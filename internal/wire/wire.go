// Package wire is the network half of the distributed sampler: a
// stdlib-only, length-prefixed binary protocol carrying the three
// per-shard query operations of the sharded union draw — Arm (resolve +
// estimate), SegmentNear (the per-round exact segment report), and Pick
// (the post-accept point draw) — plus plan release, a health snapshot
// op, and a build-identity handshake.
//
// The protocol exists because the paper's union-of-buckets draw needs
// exactly one segment report per rejection round from one shard: a
// natural network round trip. All acceptance randomness stays on the
// client (the Pick request carries the client-drawn index into the
// segment's near-id report), so a remote shard answers from pure
// read-only index state and a same-seed query stream is bit-identical
// over the wire to the in-process path.
//
// # Framing
//
// Every message is one frame: a fixed 16-byte header followed by a
// length-prefixed payload.
//
//	offset  size  field
//	0       2     magic 0xFA 0x17
//	2       1     protocol version (Version)
//	3       1     op code
//	4       4     request id (little-endian uint32; 0 = one-way, no reply)
//	8       4     relative deadline in microseconds (0 = none)
//	12      4     payload length (little-endian uint32, ≤ MaxPayload)
//
// Request ids correlate pipelined requests with responses: a client may
// keep many requests in flight on one connection and responses may
// arrive in any order. A response frame echoes the request's id and op;
// an error response carries OpErr with a typed code (see Code). The
// deadline field propagates the client's per-attempt budget so a
// draining or overloaded server can shed requests that can no longer be
// answered in time.
//
// All integers are little-endian and fixed-width. Payload encoders
// append into caller-owned buffers and decoders read slices in place,
// so steady-state encode/decode performs no copying beyond the socket
// itself.
package wire

import (
	"errors"
	"fmt"
)

// Version is the protocol version carried in every frame header.
// Breaking changes to the header or any payload layout bump it; a
// server rejects frames whose version it does not speak with
// CodeBadVersion.
const Version = 1

// Frame header constants.
const (
	magic0 = 0xFA
	magic1 = 0x17
	// HeaderSize is the fixed frame-header length in bytes.
	HeaderSize = 16
	// MaxPayload caps a frame's payload length. Frames announcing more
	// are rejected before any allocation — the defense against a
	// garbage or hostile peer making the receiver allocate gigabytes.
	MaxPayload = 1 << 24
)

// Op identifies the operation a frame carries.
type Op uint8

// The protocol operations. Responses echo the request's op; OpErr
// replaces it on failure.
const (
	// OpHello is the connection handshake: the client announces its
	// protocol version and point codec, the server answers with its
	// build identity (Meta) so mismatched fleets fail loudly at dial
	// time instead of diverging silently at query time.
	OpHello Op = 1
	// OpArm arms a server-side shard plan for a new logical query:
	// resolve the query point, merge the count-distinct sketches, and
	// return the estimate ŝ and initial segment count k0.
	OpArm Op = 2
	// OpSegment reports the exact number of distinct near points in one
	// segment of the armed plan, retaining the ids for OpPick.
	OpSegment Op = 3
	// OpPick returns the near id at a client-chosen index of the last
	// OpSegment report — the client draws the randomness, the server
	// just dereferences, so streams stay bit-identical to in-process.
	OpPick Op = 4
	// OpRelease releases a server-side plan (returning its pooled
	// querier). One-way: request id 0, no response.
	OpRelease Op = 5
	// OpHealth returns the serving side's health snapshot (per-shard
	// down/failures/probes/readmissions records).
	OpHealth Op = 6
	// OpErr is the error-response op: payload is a Code plus a message.
	OpErr Op = 7
)

// String names the op for errors and logs.
func (o Op) String() string {
	switch o {
	case OpHello:
		return "hello"
	case OpArm:
		return "arm"
	case OpSegment:
		return "segment"
	case OpPick:
		return "pick"
	case OpRelease:
		return "release"
	case OpHealth:
		return "health"
	case OpErr:
		return "err"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Code is a typed error code carried by OpErr responses. Codes exist so
// the client-side backend can map remote failures onto the shard
// layer's error vocabulary (ShardError causes, ErrShardDown) without
// parsing strings.
type Code uint16

const (
	// CodeMalformed: the request payload failed to decode or violated a
	// protocol invariant (unknown plan op before arm, pick index out of
	// range, duplicate plan id).
	CodeMalformed Code = 1
	// CodeUnknownPlan: the plan id is not armed on this connection
	// (already released, or the server restarted).
	CodeUnknownPlan Code = 2
	// CodeDraining: the server is draining for shutdown and admits no
	// new plans. The client backend maps this onto shard.ErrShardDown.
	CodeDraining Code = 3
	// CodeDeadline: the request's propagated deadline expired before
	// the server executed it.
	CodeDeadline Code = 4
	// CodeInternal: the handler panicked; the panic was contained and
	// the connection survives.
	CodeInternal Code = 5
	// CodeBadVersion: the peer speaks a different protocol version.
	CodeBadVersion Code = 6
	// CodeBadCodec: the client's point codec does not match the
	// server's dataset.
	CodeBadCodec Code = 7
	// CodeUnsupportedOp: the op code is not implemented by this
	// endpoint (e.g. OpArm against a health-only operator endpoint).
	CodeUnsupportedOp Code = 8
)

// String names the code.
func (c Code) String() string {
	switch c {
	case CodeMalformed:
		return "malformed"
	case CodeUnknownPlan:
		return "unknown-plan"
	case CodeDraining:
		return "draining"
	case CodeDeadline:
		return "deadline"
	case CodeInternal:
		return "internal"
	case CodeBadVersion:
		return "bad-version"
	case CodeBadCodec:
		return "bad-codec"
	case CodeUnsupportedOp:
		return "unsupported-op"
	}
	return fmt.Sprintf("code(%d)", uint16(c))
}

// ProtocolError reports a framing or payload violation detected
// locally: bad magic, unknown version, oversized or truncated frames,
// short payloads. It is terminal for the connection that produced it.
type ProtocolError struct {
	// Reason says what was violated.
	Reason string
}

// Error implements error.
func (e *ProtocolError) Error() string { return "wire: protocol error: " + e.Reason }

// RemoteError is a typed error response received from the peer (an
// OpErr frame): the code and the server's message.
type RemoteError struct {
	// Code is the typed failure class.
	Code Code
	// Msg is the server's human-readable detail.
	Msg string
}

// Error implements error.
func (e *RemoteError) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("wire: remote error: %s", e.Code)
	}
	return fmt.Sprintf("wire: remote error: %s: %s", e.Code, e.Msg)
}

// ErrClosed is returned by client calls after Close, and by calls whose
// connection died mid-flight (the response can never arrive).
var ErrClosed = errors.New("wire: connection closed")

// Header is a decoded frame header.
type Header struct {
	// Op is the frame's operation.
	Op Op
	// ReqID correlates the frame with its response; 0 marks a one-way
	// frame that expects none.
	ReqID uint32
	// DeadlineMicros is the client's remaining per-attempt budget in
	// microseconds at send time; 0 means unbounded.
	DeadlineMicros uint32
	// PayloadLen is the length of the payload that follows.
	PayloadLen int
}

// AppendHeader encodes h into dst. payloadLen must already be set.
func AppendHeader(dst []byte, h Header) []byte {
	return append(dst,
		magic0, magic1, Version, byte(h.Op),
		byte(h.ReqID), byte(h.ReqID>>8), byte(h.ReqID>>16), byte(h.ReqID>>24),
		byte(h.DeadlineMicros), byte(h.DeadlineMicros>>8), byte(h.DeadlineMicros>>16), byte(h.DeadlineMicros>>24),
		byte(h.PayloadLen), byte(h.PayloadLen>>8), byte(h.PayloadLen>>16), byte(h.PayloadLen>>24),
	)
}

// DecodeHeader decodes a frame header from b, which must be exactly
// HeaderSize bytes. Violations return a *ProtocolError.
func DecodeHeader(b []byte) (Header, error) {
	if len(b) != HeaderSize {
		return Header{}, &ProtocolError{Reason: fmt.Sprintf("header is %d bytes, want %d", len(b), HeaderSize)}
	}
	if b[0] != magic0 || b[1] != magic1 {
		return Header{}, &ProtocolError{Reason: fmt.Sprintf("bad magic %#02x%02x", b[0], b[1])}
	}
	if b[2] != Version {
		return Header{}, &ProtocolError{Reason: fmt.Sprintf("unsupported protocol version %d (speak %d)", b[2], Version)}
	}
	h := Header{
		Op:             Op(b[3]),
		ReqID:          uint32(b[4]) | uint32(b[5])<<8 | uint32(b[6])<<16 | uint32(b[7])<<24,
		DeadlineMicros: uint32(b[8]) | uint32(b[9])<<8 | uint32(b[10])<<16 | uint32(b[11])<<24,
		PayloadLen:     int(uint32(b[12]) | uint32(b[13])<<8 | uint32(b[14])<<16 | uint32(b[15])<<24),
	}
	if h.PayloadLen > MaxPayload {
		return Header{}, &ProtocolError{Reason: fmt.Sprintf("payload length %d exceeds cap %d", h.PayloadLen, MaxPayload)}
	}
	return h, nil
}
