package wire

import (
	"fmt"
	"math"

	"fairnn/internal/vector"
)

// PointCodec serializes query points across the wire. The codec name
// travels in the handshake so a client speaking the wrong point type
// against a server fails at dial time (CodeBadCodec) rather than
// resolving garbage.
//
// Codecs must be pure and deterministic: the encoded bytes are the only
// thing the server sees, so Append∘Decode must reproduce the point
// exactly — a lossy codec would perturb bucket signatures and break the
// bit-identical-streams contract.
type PointCodec[P any] interface {
	// Name identifies the codec for handshake validation.
	Name() string
	// Append encodes p into dst and returns the extended slice.
	Append(dst []byte, p P) []byte
	// Decode reconstructs a point from its encoded bytes.
	Decode(b []byte) (P, error)
}

// IntCodec encodes int points (the scalar line-dataset spaces) as
// little-endian u64 two's complement.
type IntCodec struct{}

// Name implements PointCodec.
func (IntCodec) Name() string { return "int64" }

// Append implements PointCodec.
func (IntCodec) Append(dst []byte, p int) []byte { return appendU64(dst, uint64(int64(p))) }

// Decode implements PointCodec.
func (IntCodec) Decode(b []byte) (int, error) {
	c := cursor{b: b}
	v := int(int64(c.u64("point.int")))
	return v, c.done()
}

// VecCodec encodes fixed-dimension vector.Vec points as Dim
// little-endian float64 words. The dimension is part of the codec name,
// so a client/server dimension mismatch fails the handshake.
type VecCodec struct {
	// Dim is the required vector dimension.
	Dim int
}

// Name implements PointCodec.
func (c VecCodec) Name() string { return fmt.Sprintf("vec64/%d", c.Dim) }

// Append implements PointCodec.
func (c VecCodec) Append(dst []byte, p vector.Vec) []byte {
	for _, x := range p {
		dst = appendU64(dst, math.Float64bits(x))
	}
	return dst
}

// Decode implements PointCodec.
func (c VecCodec) Decode(b []byte) (vector.Vec, error) {
	if len(b) != 8*c.Dim {
		return nil, &ProtocolError{Reason: fmt.Sprintf("vec point is %d bytes, want %d (dim %d)", len(b), 8*c.Dim, c.Dim)}
	}
	v := make(vector.Vec, c.Dim)
	cur := cursor{b: b}
	for i := range v {
		v[i] = cur.f64("point.vec")
	}
	if err := cur.done(); err != nil {
		return nil, err
	}
	return v, nil
}
