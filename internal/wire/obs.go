package wire

import (
	"strconv"
	"time"

	"fairnn/internal/obs"
)

// Telemetry for the wire seam. Both ends follow the module's
// disabled-telemetry contract: without an Observe call (or with a nil
// registry) the metrics pointers stay nil and every record helper is a
// no-op — no branching in callers, no allocations, no behavior change.
// Instruments are keyed by the server's shard index, so a fleet of
// clients or servers can share one registry without colliding.

// opInstrument returns one instrument per protocol op, indexed by the
// op byte (ops are 1..7; slot 0 is unused). fn builds the instrument
// for one op name.
func perOp[T any](fn func(opName string) T) [8]T {
	var out [8]T
	for op := OpHello; op <= OpErr; op++ {
		out[op] = fn(op.String())
	}
	return out
}

// clientMetrics is the client-side instrument set: per-op request
// round-trip latency and failures, plus redial attempts.
type clientMetrics struct {
	lat     [8]*obs.Histogram
	errs    [8]*obs.Counter
	redials *obs.Counter
}

// Observe registers the client's instruments (labeled by the server's
// shard index) and starts recording. Call once, after Dial and before
// the client is shared; a nil registry leaves telemetry off.
func (c *Client) Observe(r *obs.Registry) {
	if r == nil {
		return
	}
	shard := strconv.Itoa(c.meta.ShardIndex)
	c.met = &clientMetrics{
		lat: perOp(func(op string) *obs.Histogram {
			return r.Histogram("fairnn_client_request_seconds", obs.Labels("shard", shard, "op", op), "wire request round-trip latency")
		}),
		errs: perOp(func(op string) *obs.Counter {
			return r.Counter("fairnn_client_request_errors_total", obs.Labels("shard", shard, "op", op), "wire requests that returned an error")
		}),
		redials: r.Counter("fairnn_client_redials_total", obs.Labels("shard", shard), "lazy reconnect attempts after a dead socket"),
	}
}

// observe records one finished call.
//
//fairnn:noalloc
func (m *clientMetrics) observe(op Op, d time.Duration, err error) {
	if m == nil || op >= 8 {
		return
	}
	m.lat[op].Observe(d)
	if err != nil {
		m.errs[op].Inc()
	}
}

// redialed records one reconnect attempt.
//
//fairnn:noalloc
func (m *clientMetrics) redialed() {
	if m == nil {
		return
	}
	m.redials.Inc()
}

// serverMetrics is the server-side instrument set: per-op handling
// latency, deadline sheds, drain refusals, and the active plan /
// connection gauges.
type serverMetrics struct {
	lat         [8]*obs.Histogram
	sheds       *obs.Counter
	drains      *obs.Counter
	activePlans *obs.Gauge
	activeConns *obs.Gauge
}

// Observe registers the server's instruments (labeled by its shard
// index) and starts recording. Call before Serve; a nil registry leaves
// telemetry off.
func (s *Server[P]) Observe(r *obs.Registry) {
	if r == nil {
		return
	}
	shard := strconv.Itoa(s.meta.ShardIndex)
	l := obs.Labels("shard", shard)
	s.met = &serverMetrics{
		lat: perOp(func(op string) *obs.Histogram {
			return r.Histogram("fairnn_server_request_seconds", obs.Labels("shard", shard, "op", op), "wire request handling latency")
		}),
		sheds:       r.Counter("fairnn_server_deadline_sheds_total", l, "requests shed because their deadline expired before execution"),
		drains:      r.Counter("fairnn_server_drains_refused_total", l, "arm requests refused while draining"),
		activePlans: r.Gauge("fairnn_server_active_plans", l, "armed, unreleased plans across all connections"),
		activeConns: r.Gauge("fairnn_server_active_conns", l, "live client connections"),
	}
}

// handled records one dispatched request.
//
//fairnn:noalloc
func (m *serverMetrics) handled(op Op, d time.Duration) {
	if m == nil || op >= 8 {
		return
	}
	m.lat[op].Observe(d)
}

// shed records one deadline shed.
//
//fairnn:noalloc
func (m *serverMetrics) shed() {
	if m == nil {
		return
	}
	m.sheds.Inc()
}

// drainRefused records one arm refused while draining.
//
//fairnn:noalloc
func (m *serverMetrics) drainRefused() {
	if m == nil {
		return
	}
	m.drains.Inc()
}

// plans mirrors the active-plan count onto the gauge.
//
//fairnn:noalloc
func (m *serverMetrics) plans(n int64) {
	if m == nil {
		return
	}
	m.activePlans.Set(n)
}

// conns mirrors the live-connection count onto the gauge.
//
//fairnn:noalloc
func (m *serverMetrics) conns(n int) {
	if m == nil {
		return
	}
	m.activeConns.Set(int64(n))
}
