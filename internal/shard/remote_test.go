package shard

import (
	"context"
	"net"
	"testing"
	"time"

	"fairnn/internal/core"
	"fairnn/internal/fault"
	"fairnn/internal/lsh"
	"fairnn/internal/obs"
	"fairnn/internal/stats"
	"fairnn/internal/wire"
)

// Loopback fleet tests: real wire servers on 127.0.0.1 built with the
// exact per-shard recipe BuildConfig uses (options resolved against the
// global point count, shard j seeded with ShardSeed(seed, j)), so a
// Connect-assembled sampler has an in-process twin to compare against
// bit for bit.

// startLineFleet builds and serves one wire server per shard of a line
// build. addrs[j] serves shard j. Servers are closed via t.Cleanup;
// individual tests may Close one earlier to simulate a process kill.
func startLineFleet(t *testing.T, n int, radius float64, shards int, part Partitioner, seed uint64) ([]string, []*wire.Server[int]) {
	t.Helper()
	addrs := make([]string, shards)
	srvs := make([]*wire.Server[int], shards)
	for j := 0; j < shards; j++ {
		srv, addr := serveLineShard(t, n, radius, shards, j, part, seed)
		srvs[j], addrs[j] = srv, addr
	}
	return addrs, srvs
}

// serveLineShard builds shard j's structure and serves it, on addr if
// given (restart on the same port) or an ephemeral port.
func serveLineShard(t *testing.T, n int, radius float64, shards, j int, part Partitioner, seed uint64, addr ...string) (*wire.Server[int], string) {
	t.Helper()
	opts := core.IndependentOptions{}.Resolved(n)
	var local []int
	for i := 0; i < n; i++ {
		if part.Assign(i, n, shards) == j {
			local = append(local, i)
		}
	}
	d, err := core.NewIndependent[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 1}, local, radius, opts, ShardSeed(seed, j))
	if err != nil {
		t.Fatal(err)
	}
	meta := wire.Meta{
		ShardIndex: j, ShardCount: shards, GlobalN: n, ShardN: len(local),
		Lambda: float64(opts.Lambda), Sigma: opts.SigmaBudget,
		QueryStreamSeed: d.QueryStreamSeed(), Radius: radius,
		Codec: (wire.IntCodec{}).Name(),
	}
	srv := wire.NewServer[int](d, wire.IntCodec{}, meta, nil)
	listen := "127.0.0.1:0"
	if len(addr) > 0 {
		listen = addr[0]
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		defer func() { _ = recover() }()
		_ = srv.Serve(ln)
	}()
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

// TestRemoteBackendIdenticalStreams is the acceptance oracle of the
// serving subsystem: a sampler assembled over loopback servers emits
// same-seed sample streams bit-identical to the in-process sampler over
// the same build — single draws, batch draws, and the per-query cost
// counters all agree. The server holds no randomness; if any remote op
// spent a draw the in-process one does not (or vice versa), the streams
// diverge immediately.
func TestRemoteBackendIdenticalStreams(t *testing.T) {
	const n, ball, S = 256, 16, 4
	const seed = 404
	addrs, _ := startLineFleet(t, n, ball-1, S, RoundRobin{}, seed)
	remote, err := Connect[int](wire.IntCodec{}, addrs, RemoteConfig{DialTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	inproc := buildLine(t, n, ball-1, S, RoundRobin{}, seed)

	if got, want := remote.Size(), inproc.Size(); got != want {
		t.Fatalf("remote size %d, in-process %d", got, want)
	}
	for i := 0; i < 300; i++ {
		q := (i * 7) % n
		var rst, ist core.QueryStats
		rid, rok := remote.Sample(q, &rst)
		iid, iok := inproc.Sample(q, &ist)
		if rid != iid || rok != iok {
			t.Fatalf("draw %d (q=%d): remote (%d,%v) != in-process (%d,%v)", i, q, rid, rok, iid, iok)
		}
		if rst.Rounds != ist.Rounds || rst.FinalK != ist.FinalK || rst.ShardChosen != ist.ShardChosen {
			t.Fatalf("draw %d: round state diverged: remote (rounds=%d k=%d shard=%d), in-process (rounds=%d k=%d shard=%d)",
				i, rst.Rounds, rst.FinalK, rst.ShardChosen, ist.Rounds, ist.FinalK, ist.ShardChosen)
		}
		if rst.SketchEstimate != ist.SketchEstimate {
			t.Fatalf("draw %d: estimate diverged: %v != %v", i, rst.SketchEstimate, ist.SketchEstimate)
		}
		if rst.BucketsScanned != ist.BucketsScanned || rst.PointsInspected != ist.PointsInspected || rst.ScoreEvals != ist.ScoreEvals {
			t.Fatalf("draw %d: cost counters diverged: remote (%d,%d,%d), in-process (%d,%d,%d)",
				i, rst.BucketsScanned, rst.PointsInspected, rst.ScoreEvals, ist.BucketsScanned, ist.PointsInspected, ist.ScoreEvals)
		}
	}
	// Batch draws take the parallel-arm path; the streams must still
	// match because arming spends no randomness.
	for i := 0; i < 20; i++ {
		rids := remote.SampleK((i*11)%n, 32, nil)
		iids := inproc.SampleK((i*11)%n, 32, nil)
		if len(rids) != len(iids) {
			t.Fatalf("batch %d: remote returned %d ids, in-process %d", i, len(rids), len(iids))
		}
		for x := range rids {
			if rids[x] != iids[x] {
				t.Fatalf("batch %d id %d: remote %d != in-process %d", i, x, rids[x], iids[x])
			}
		}
	}
}

// TestRemoteObserveBitEquivalence extends the idle-telemetry contract
// across the wire: a Connect with a live registry and trace sampling
// must emit the same sample stream as a bare Connect over the same
// fleet. The client-side instruments (request latency, shard ops,
// draws) and the trace ring must nonetheless have recorded work, so the
// test cannot pass with telemetry silently disconnected.
func TestRemoteObserveBitEquivalence(t *testing.T) {
	const n, ball, S = 256, 16, 4
	const seed = 408
	addrs, _ := startLineFleet(t, n, ball-1, S, RoundRobin{}, seed)
	bare, err := Connect[int](wire.IntCodec{}, addrs, RemoteConfig{DialTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	reg := obs.NewRegistry()
	obsd, err := Connect[int](wire.IntCodec{}, addrs, RemoteConfig{
		Obs: reg, TraceEveryN: 3, DialTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer obsd.Close()

	for i := 0; i < 250; i++ {
		q := (i * 7) % n
		var bst, ost core.QueryStats
		bid, bok := bare.Sample(q, &bst)
		oid, ook := obsd.Sample(q, &ost)
		if bid != oid || bok != ook {
			t.Fatalf("draw %d (q=%d): observed (%d,%v) != bare (%d,%v)", i, q, oid, ook, bid, bok)
		}
		if bst.Rounds != ost.Rounds || bst.ScoreEvals != ost.ScoreEvals || bst.ShardChosen != ost.ShardChosen {
			t.Fatalf("draw %d: stats diverged: observed (rounds=%d evals=%d shard=%d), bare (rounds=%d evals=%d shard=%d)",
				i, ost.Rounds, ost.ScoreEvals, ost.ShardChosen, bst.Rounds, bst.ScoreEvals, bst.ShardChosen)
		}
	}
	if c := reg.Counter("fairnn_draws_total", obs.Labels("layer", "shard"), ""); c.Value() == 0 {
		t.Fatal("registry recorded no shard-layer draws over the wire")
	}
	if h := reg.Histogram("fairnn_client_request_seconds", obs.Labels("shard", "0", "op", "arm"), ""); h.Count() == 0 {
		t.Fatal("client request histogram recorded no arm round-trips for shard 0")
	}
	trc := reg.Tracer()
	if trc == nil || trc.Sampled() == 0 || len(trc.Recent()) == 0 {
		t.Fatalf("trace ring idle after 250 remote draws at everyN=3 (tracer=%v)", trc)
	}
}

// TestRemoteKillDegradedUniform kills one server process mid-run. The
// degraded sampler must keep answering exactly uniformly over the
// surviving shards' union ball — the same gate the in-process shard-kill
// test enforces — with the loss reported on QueryStats.Degraded and
// never a point from the dead shard.
func TestRemoteKillDegradedUniform(t *testing.T) {
	const n, ball, S = 256, 16, 4
	const dead = 1
	addrs, srvs := startLineFleet(t, n, ball-1, S, RoundRobin{}, 405)
	remote, err := Connect[int](wire.IntCodec{}, addrs, RemoteConfig{
		Resilience:  Resilience{Degraded: true, Deadline: time.Second, Retries: 1},
		DialTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	// Warm: full fleet answers.
	var st core.QueryStats
	if _, ok := remote.Sample(0, &st); !ok || st.Degraded.Degraded() {
		t.Fatalf("warm query: ok=%v degraded=%v", st.Degraded.Degraded(), st.Degraded.LostShards)
	}

	srvs[dead].Close() // process kill: listener and live conns drop now

	reps := 2400
	if testing.Short() {
		reps = 1200
	}
	freq := stats.NewFrequency()
	degraded := 0
	var survivors []int32
	for id := int32(0); id < ball; id++ {
		if int(id)%S != dead { // round-robin: global id i lives on shard i%S
			survivors = append(survivors, id)
		}
	}
	for i := 0; i < reps; i++ {
		var st core.QueryStats
		id, ok := remote.Sample(0, &st)
		if !ok {
			t.Fatalf("draw %d failed with degraded mode on", i)
		}
		if int(id)%S == dead {
			t.Fatalf("draw %d returned id %d from the killed shard", i, id)
		}
		if id < 0 || id >= ball {
			t.Fatalf("draw %d returned far point %d (ball is [0, %d))", i, id, ball)
		}
		if st.Degraded.Degraded() {
			degraded++
			if len(st.Degraded.LostShards) != 1 || st.Degraded.LostShards[0] != dead {
				t.Fatalf("draw %d reports lost shards %v, want [%d]", i, st.Degraded.LostShards, dead)
			}
		}
		freq.Observe(id)
	}
	if degraded < reps/2 {
		t.Fatalf("only %d/%d draws reported degradation after the kill", degraded, reps)
	}
	// The TV noise floor scales with 1/√reps; the tight bound only holds
	// at full rep count (the chi-square gate below is n-robust).
	if tv := freq.TVFromUniform(survivors); !testing.Short() && tv > 0.05 {
		t.Errorf("TV from uniform over survivors = %v, want < 0.05", tv)
	}
	if _, p := freq.ChiSquareUniform(survivors); p < 1e-4 {
		t.Errorf("chi-square rejects uniformity over survivors: p = %v", p)
	}
}

// TestRemoteFaultInjectionDeterminism pins satellite 1: the fault
// injector composes with the remote backend at the same seam as
// in-process, so an error-schedule run over the network is bit-identical
// — same samples, same retries, same degradations — to the same schedule
// run in-process. (Injected faults fire before any draw is spent,
// exactly as in-process, so even faulted streams match.)
func TestRemoteFaultInjectionDeterminism(t *testing.T) {
	const n, ball, S = 256, 16, 4
	const seed = 406
	mkInj := func() *fault.Injector {
		return fault.New(S, 777,
			fault.Spec{Shards: []int{2}, Ops: []fault.Op{fault.OpSegment}, ErrRate: 0.2},
			fault.Spec{Shards: []int{0}, Ops: []fault.Op{fault.OpArm}, After: 40, Limit: 30, ErrRate: fault.Always},
		)
	}
	res := Resilience{Degraded: true, Retries: 1}

	addrs, _ := startLineFleet(t, n, ball-1, S, RoundRobin{}, seed)
	remote, err := Connect[int](wire.IntCodec{}, addrs, RemoteConfig{
		Resilience: res, Injector: mkInj(), DialTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	inproc, err := BuildConfig[int](intSpace(), allCollide{}, constParams(lsh.Params{K: 1, L: 1}), lineDataset(n), ball-1, core.IndependentOptions{}, Config{
		Shards: S, Partitioner: RoundRobin{}, Seed: seed, Resilience: res, Injector: mkInj(),
	})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 250; i++ {
		var rst, ist core.QueryStats
		rid, rok := remote.Sample(0, &rst)
		iid, iok := inproc.Sample(0, &ist)
		if rid != iid || rok != iok {
			t.Fatalf("faulted draw %d: remote (%d,%v) != in-process (%d,%v)", i, rid, rok, iid, iok)
		}
		if rst.Degraded.Degraded() != ist.Degraded.Degraded() {
			t.Fatalf("faulted draw %d: degradation diverged: remote %v, in-process %v", i, rst.Degraded.LostShards, ist.Degraded.LostShards)
		}
	}
}

// TestRemoteHealthOverWire pins satellite 2: the sampler's health
// registry — fed by real network failures — is serveable over a
// HealthServer endpoint, and a restarted server is probed back in with
// the readmission counted.
func TestRemoteHealthOverWire(t *testing.T) {
	const n, ball, S = 120, 12, 3
	const seed = 407
	const dead = 2
	addrs, srvs := startLineFleet(t, n, ball-1, S, RoundRobin{}, seed)
	remote, err := Connect[int](wire.IntCodec{}, addrs, RemoteConfig{
		Resilience:  Resilience{Degraded: true, Deadline: time.Second},
		DialTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	hs := wire.NewHealthServer(func() []wire.HealthRecord { return HealthRecords(remote) })
	hln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		defer func() { _ = recover() }()
		_ = hs.Serve(hln)
	}()
	defer hs.Close()

	fetch := func() []wire.HealthRecord {
		t.Helper()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		recs, err := wire.FetchHealth(ctx, hln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != S {
			t.Fatalf("health endpoint returned %d records, want %d", len(recs), S)
		}
		return recs
	}

	remote.Sample(0, nil)
	if recs := fetch(); !recs[dead].Healthy || recs[dead].Failures != 0 {
		t.Fatalf("pre-kill health record %+v", recs[dead])
	}

	srvs[dead].Close()
	deadlineLoop(t, "shard marked unhealthy with failures", func() bool {
		remote.Sample(0, nil)
		recs := fetch()
		return !recs[dead].Healthy && recs[dead].Failures > 0
	})

	// Restart the shard on its original address with the identical build:
	// the client's probe must redial, pass the identity re-check, and
	// re-admit the shard.
	serveLineShard(t, n, ball-1, S, dead, RoundRobin{}, seed, addrs[dead])
	deadlineLoop(t, "restarted shard probed back in", func() bool {
		remote.Sample(0, nil)
		recs := fetch()
		return recs[dead].Healthy && recs[dead].Readmissions >= 1 && recs[dead].Probes >= 1
	})

	// Back at full strength: queries are no longer degraded.
	deadlineLoop(t, "undegraded query after readmission", func() bool {
		var st core.QueryStats
		_, ok := remote.Sample(0, &st)
		return ok && !st.Degraded.Degraded()
	})
}

// deadlineLoop retries cond (which may issue queries) until it holds or
// a generous budget expires.
func deadlineLoop(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
