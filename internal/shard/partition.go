// Package shard is the sharded-sampler subsystem: it partitions a point
// set across S shards, builds one Section 4 (r-NNIS) structure per shard
// in parallel, and answers queries with a uniformity-preserving two-stage
// draw over the union of the shards' balls — shard chosen with
// probability proportional to its per-query near-count estimate, draw
// inside the shard, estimate error corrected by the same rejection step
// the paper uses to sample uniformly from a union of buckets (see
// internal/core/shardplan.go for the distributional argument). The
// façade exposes it as fairnn.Sharded.
package shard

import "fairnn/internal/rng"

// Partitioner assigns each global point index to a shard. Assign must be
// deterministic (the id-translation tables are built from it once) and
// must return a value in [0, shards) for every i in [0, n).
type Partitioner interface {
	// Name identifies the scheme in flags and error messages.
	Name() string
	// Assign returns the shard for global point index i of n total.
	Assign(i, n, shards int) int
}

// RoundRobin stripes points across shards in index order: point i lands
// in shard i mod S. Shard sizes differ by at most one, and with S=1 the
// partition preserves the global point order exactly (the basis of the
// single-shard bit-compatibility contract).
type RoundRobin struct{}

// Name implements Partitioner.
func (RoundRobin) Name() string { return "round-robin" }

// Assign implements Partitioner.
func (RoundRobin) Assign(i, _, shards int) int { return i % shards }

// Hash assigns each point by a seeded mix of its index: shard loads are
// balanced in expectation regardless of how the input is ordered, so an
// adversarially ordered dataset (e.g. clustered points arriving in
// cluster order, which round-robin would stripe into correlated shards)
// still spreads evenly. With S=1 every point lands in shard 0 in global
// order, preserving the bit-compatibility contract.
type Hash struct {
	// Seed keys the mix; the zero value is a valid fixed key.
	Seed uint64
}

// Name implements Partitioner.
func (Hash) Name() string { return "hash" }

// Assign implements Partitioner.
func (h Hash) Assign(i, _, shards int) int {
	return int(rng.Mix64(uint64(i)^h.Seed) % uint64(shards))
}
