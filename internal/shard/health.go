package shard

import (
	"math"
	"sync/atomic"
)

// healthRegistry is the per-sampler record of which shards are currently
// trusted. A shard that exhausts its deadline/retry budget is marked
// unhealthy; while unhealthy, queries skip it without spending their
// budget on it (fail fast), except that every probeEvery-th skip-eligible
// query is let through as a re-admission probe — one success flips the
// shard healthy again. Probing is counted in queries, not wall time, so
// fault-injection tests are fully deterministic: "the shard heals after
// its outage window" is a statement about call ordinals, not clocks.
//
// The registry also remembers each shard's last successfully observed
// per-query near-count estimate ŝ_j. When a degraded query loses a shard
// before arming it (health skip, arm failure), that remembered mass is
// the best available input to the coverage fraction on
// core.DegradedInfo.
//
// All state is atomic; the registry is shared by every concurrent query
// of one Sharded.
type healthRegistry struct {
	shards     []shardHealthState
	probeEvery uint64
}

type shardHealthState struct {
	down     atomic.Bool
	failures atomic.Uint64
	skipped  atomic.Uint64
	probes   atomic.Uint64
	readmits atomic.Uint64
	// ticks counts allow() calls while down; it drives the probe cadence.
	ticks atomic.Uint64
	// estKnown/estBits remember the shard's last successful per-query
	// estimate ŝ_j (float bits), for degraded-coverage accounting.
	estKnown atomic.Bool
	estBits  atomic.Uint64
}

func newHealthRegistry(shards int, probeEvery int) *healthRegistry {
	return &healthRegistry{
		shards:     make([]shardHealthState, shards),
		probeEvery: uint64(probeEvery),
	}
}

// allow reports whether this query should call shard j: always for a
// healthy shard, and for an unhealthy one only on its probe cadence.
//
//fairnn:noalloc
func (h *healthRegistry) allow(j int) bool {
	sh := &h.shards[j]
	if !sh.down.Load() {
		return true
	}
	if sh.ticks.Add(1)%h.probeEvery == 0 {
		sh.probes.Add(1)
		return true
	}
	sh.skipped.Add(1)
	return false
}

// ok records a successful arm: remember the estimate and re-admit the
// shard if it was unhealthy. It reports whether this call flipped the
// shard healthy (a probe success), so the caller can count the
// transition.
//
//fairnn:noalloc
func (h *healthRegistry) ok(j int, est float64) bool {
	sh := &h.shards[j]
	sh.estBits.Store(math.Float64bits(est))
	sh.estKnown.Store(true)
	if sh.down.CompareAndSwap(true, false) {
		sh.readmits.Add(1)
		return true
	}
	return false
}

// fail records an exhausted budget and marks the shard unhealthy.
//
//fairnn:noalloc
func (h *healthRegistry) fail(j int) {
	sh := &h.shards[j]
	sh.failures.Add(1)
	sh.down.Store(true)
}

// lastEstimate returns the shard's last successfully observed ŝ_j, if
// any query ever armed it.
//
//fairnn:noalloc
func (h *healthRegistry) lastEstimate(j int) (float64, bool) {
	sh := &h.shards[j]
	if !sh.estKnown.Load() {
		return 0, false
	}
	return math.Float64frombits(sh.estBits.Load()), true
}

// ShardHealth is a point-in-time snapshot of one shard's health record,
// for introspection and tests.
type ShardHealth struct {
	// Shard is the shard index.
	Shard int
	// Healthy is false while the shard is excluded pending a probe.
	Healthy bool
	// Failures counts exhausted deadline/retry budgets.
	Failures uint64
	// Skipped counts queries that skipped the shard while unhealthy.
	Skipped uint64
	// Probes counts re-admission probes attempted.
	Probes uint64
	// Readmissions counts probe successes that flipped the shard healthy.
	Readmissions uint64
}

// Health snapshots the per-shard health registry. On a sampler without
// resilience enabled every shard reports healthy with zero counters.
func (s *Sharded[P]) Health() []ShardHealth {
	out := make([]ShardHealth, len(s.backends))
	for j := range out {
		sh := &s.health.shards[j]
		out[j] = ShardHealth{
			Shard:        j,
			Healthy:      !sh.down.Load(),
			Failures:     sh.failures.Load(),
			Skipped:      sh.skipped.Load(),
			Probes:       sh.probes.Load(),
			Readmissions: sh.readmits.Load(),
		}
	}
	return out
}
