package shard

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"math/bits"
	"runtime"
	"sync/atomic"

	"fairnn/internal/core"
	"fairnn/internal/lsh"
	"fairnn/internal/rng"
)

// ctxCheckRounds is the rejection-loop cancellation granularity, kept
// equal to the unsharded loop's (internal/core/context.go) so a
// single-shard sharded query checks — and therefore draws and returns —
// exactly like the structure it wraps.
const ctxCheckRounds = 64

// Sharded is a fair sampler over a point set partitioned across S
// shards, each backed by its own Section 4 (r-NNIS) structure. It
// satisfies the façade's full Sampler contract.
//
// A query arms one ShardPlan per shard (hashing q in the shard's tables
// and merging its count-distinct sketches into the per-shard estimate
// ŝ_j), then repeats the two-stage round: pick a segment uniformly from
// the union of all shards' segment pools — i.e. shard j with probability
// k_j/Σk, k_j ∝ ŝ_j — count the segment's near points exactly, accept
// with probability λ_q,h/λ, and return a uniform near point of the
// accepted segment, translated to its global id. Each accepted round is
// exactly uniform over the union ball for any segment-count vector (the
// rejection step absorbs all estimate error; see
// internal/core/shardplan.go), and every draw spends fresh randomness,
// so consecutive outputs are independent — Theorem 2 lifted to the
// partitioned index.
//
// All randomness of one logical query (a Sample, or all draws of one
// SampleK or Samples stream) comes from a single stream split off the
// seed by an atomic query counter, so outputs are deterministic per
// (structure, query index) no matter how the per-shard resolve work is
// scheduled across workers. With S=1 the stream, the wrapped structure
// and the round arithmetic all coincide with the unsharded sampler's, so
// a one-shard Sharded is bit-identical to the Independent it wraps.
//
// Query methods are safe for concurrent use: per-shard scratch comes
// from each shard's bounded querier pool and sessions are pooled the
// same way. Steady-state Sample performs zero heap allocations.
type Sharded[P any] struct {
	shards   []*core.Independent[P]
	toGlobal [][]int32 // per shard: local id -> global id
	lambda   float64
	sigma    int
	partName string
	size     int
	// floorGrace is ⌈log₂ S⌉: the number of extra Σ-periods a draw spends
	// at the all-ones segment floor before giving up. The unsharded loop
	// ends with one Σ-period each at k = ..., 2, 1; with S live shards the
	// pool cannot shrink below S, so those final periods — which carry
	// most of the loop's tail success mass — are unreachable. Holding the
	// floor for ⌈log₂ S⌉ extra periods restores the unsharded failure
	// probability δ, and is exactly zero extra periods at S=1 (the
	// bit-compatibility contract).
	floorGrace int

	qseed uint64
	qctr  atomic.Uint64

	// pool is the capped session free list (the querier-pool discipline,
	// one level up, on core's shared BoundedPool): sessions beyond the cap
	// are dropped for the GC, so a concurrency burst cannot pin scratch
	// forever.
	pool core.BoundedPool[session[P]]
}

// session is the pooled per-query scratch of the sharded fan-out: one
// armed plan per shard, the query's single RNG stream, and the
// per-worker stats used by the parallel arm barrier (kept here so a
// stats-enabled bulk query stays allocation-free in steady state).
type session[P any] struct {
	plans []core.ShardPlan[P]
	rng   rng.Source
	subs  []core.QueryStats
}

// Build partitions points across shards with part (nil defaults to
// RoundRobin) and constructs one Section 4 structure per shard, in
// parallel across up to GOMAXPROCS workers. paramsFor chooses the LSH
// (K, L) for one shard from its point count — each shard tunes to its
// own size. opts is resolved once against the global point count, so
// every shard shares one λ and one Σ budget (the acceptance test must be
// identical across shards for the union draw to be uniform); per-shard
// structures get distinct derived seeds, so LSH recall failures are
// independent across shards, and shard 0's seed equals the global seed —
// with S=1 the build is bit-identical to the unsharded constructor's.
func Build[P any](space core.Space[P], family lsh.Family[P], paramsFor func(shardSize int) lsh.Params, points []P, radius float64, opts core.IndependentOptions, shards int, part Partitioner, seed uint64) (*Sharded[P], error) {
	n := len(points)
	if shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d < 1", shards)
	}
	if n == 0 {
		return nil, errors.New("shard: empty point set")
	}
	if shards > n {
		return nil, fmt.Errorf("shard: %d shards over %d points leaves shards empty", shards, n)
	}
	if part == nil {
		part = RoundRobin{}
	}
	opts = opts.Resolved(n)

	local := make([][]P, shards)
	toGlobal := make([][]int32, shards)
	for i, p := range points {
		j := part.Assign(i, n, shards)
		if j < 0 || j >= shards {
			return nil, fmt.Errorf("shard: partitioner %q assigned point %d to shard %d of %d", part.Name(), i, j, shards)
		}
		local[j] = append(local[j], p)
		toGlobal[j] = append(toGlobal[j], int32(i))
	}
	for j := range local {
		if len(local[j]) == 0 {
			return nil, fmt.Errorf("shard: partitioner %q left shard %d empty (use fewer shards or RoundRobin)", part.Name(), j)
		}
	}

	s := &Sharded[P]{
		shards:     make([]*core.Independent[P], shards),
		toGlobal:   toGlobal,
		lambda:     float64(opts.Lambda),
		sigma:      opts.SigmaBudget,
		partName:   part.Name(),
		size:       n,
		floorGrace: bits.Len(uint(shards - 1)),
	}
	errs := make([]error, shards)
	fanOut(shards, func(j int) {
		d, err := core.NewIndependent(space, family, paramsFor(len(local[j])), local[j], radius, opts, seed+uint64(j)*0x9e3779b97f4a7c15)
		s.shards[j], errs[j] = d, err
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	s.qseed = s.shards[0].QueryStreamSeed()
	// One retention knob governs both pooling layers: the session pool
	// honors the same (resolved) MaxRetainedQueriers as each shard's
	// querier pool.
	s.pool.SetCap(opts.Memo.Resolved().MaxRetainedQueriers)
	return s, nil
}

// fanOut runs fn(0..n-1) across up to min(GOMAXPROCS, n) workers via
// core.ParallelRange (one shared worker pattern instead of a private
// copy). With one worker it runs inline, spawning nothing.
func fanOut(n int, fn func(i int)) {
	core.ParallelRange(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Size returns the total number of indexed points across shards.
func (s *Sharded[P]) Size() int { return s.size }

// Shards returns the shard count S.
func (s *Sharded[P]) Shards() int { return len(s.shards) }

// ShardSizes returns the per-shard point counts (a fresh slice).
func (s *Sharded[P]) ShardSizes() []int {
	sizes := make([]int, len(s.shards))
	for j, d := range s.shards {
		sizes[j] = d.N()
	}
	return sizes
}

// PartitionerName reports the partitioning scheme the index was built
// with.
func (s *Sharded[P]) PartitionerName() string { return s.partName }

// Lambda returns the shared per-segment cap λ of the acceptance test.
func (s *Sharded[P]) Lambda() int { return int(s.lambda) }

// Point returns the indexed point with the given global id.
func (s *Sharded[P]) Point(id int32) P {
	// Global ids are dense in [0, n); locate the owning shard by scanning
	// the translation tables (introspection only — queries never call this).
	for j, ids := range s.toGlobal {
		lo, hi := 0, len(ids)
		for lo < hi {
			mid := (lo + hi) / 2
			if ids[mid] < id {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(ids) && ids[lo] == id {
			return s.shards[j].Point(int32(lo))
		}
	}
	panic("shard: id out of range")
}

// RetainedScratchBytes sums the pooled per-query scratch every shard
// currently pins between queries.
func (s *Sharded[P]) RetainedScratchBytes() int {
	total := 0
	for _, d := range s.shards {
		total += d.RetainedScratchBytes()
	}
	return total
}

// begin checks out a session, seeds the query's single RNG stream from
// the atomic query counter, and arms one plan per shard — in parallel
// across workers when parallel is set (the SampleK bulk path; arming
// draws no randomness, so scheduling cannot change any output). Per-shard
// cost counters land in st; st.ShardEstimates records each ŝ_j and
// st.SketchEstimate their sum.
func (s *Sharded[P]) begin(q P, st *core.QueryStats, parallel bool) *session[P] {
	ses := s.pool.Get()
	if ses == nil {
		ses = &session[P]{plans: make([]core.ShardPlan[P], len(s.shards))}
	}
	ses.rng.Seed(s.qseed ^ rng.Mix64(s.qctr.Add(1)))
	if parallel && runtime.GOMAXPROCS(0) > 1 && len(s.shards) > 1 {
		// QueryStats is not safe for concurrent mutation: workers fill
		// per-shard stats (session-pooled), folded into st after the
		// barrier.
		var sub []core.QueryStats
		if st != nil {
			if cap(ses.subs) < len(s.shards) {
				ses.subs = make([]core.QueryStats, len(s.shards))
			}
			sub = ses.subs[:len(s.shards)]
			for j := range sub {
				sub[j] = core.QueryStats{}
			}
		}
		fanOut(len(s.shards), func(j int) {
			var sj *core.QueryStats
			if sub != nil {
				sj = &sub[j]
			}
			s.shards[j].BeginShardPlan(&ses.plans[j], q, sj)
		})
		for j := range sub {
			st.Merge(sub[j])
		}
	} else {
		for j := range ses.plans {
			s.shards[j].BeginShardPlan(&ses.plans[j], q, st)
		}
	}
	if st != nil {
		if cap(st.ShardRounds) < len(ses.plans) {
			st.ShardRounds = make([]int, len(ses.plans))
		} else {
			st.ShardRounds = st.ShardRounds[:len(ses.plans)]
			clear(st.ShardRounds)
		}
		if cap(st.ShardEstimates) < len(ses.plans) {
			st.ShardEstimates = make([]float64, len(ses.plans))
		} else {
			st.ShardEstimates = st.ShardEstimates[:len(ses.plans)]
		}
		total := 0.0
		for j := range ses.plans {
			st.ShardEstimates[j] = ses.plans[j].Estimate()
			total += ses.plans[j].Estimate()
		}
		st.SketchEstimate = total
	}
	return ses
}

// release closes every plan (returning the shards' pooled queriers) and
// recycles the session.
func (s *Sharded[P]) release(ses *session[P]) {
	for j := range ses.plans {
		ses.plans[j].Close()
	}
	s.pool.Put(ses)
}

// drawResolved runs one two-stage rejection draw against an armed
// session. The round structure — counter, ctx poll cadence, segment
// pick, Σ-budget halving order, acceptance clamp — mirrors the unsharded
// sampleResolved exactly, so with S=1 the randomness is spent call for
// call on the same stream.
func (s *Sharded[P]) drawResolved(ctx context.Context, ses *session[P], st *core.QueryStats) (int32, bool) {
	for j := range ses.plans {
		ses.plans[j].ResetDraw()
	}
	total := 0
	for j := range ses.plans {
		total += ses.plans[j].Segments()
	}
	if st != nil {
		st.ShardChosen = -1
	}
	if total == 0 {
		if st != nil {
			st.Found = false
		}
		return 0, false
	}
	sigmaFail := 0
	grace := s.floorGrace
	for rounds := 0; total >= 1; {
		if st != nil {
			st.Rounds++
		}
		rounds++
		if rounds%ctxCheckRounds == 0 && ctx.Err() != nil {
			if st != nil {
				st.Found = false
			}
			return 0, false
		}
		// One uniform pick over the union segment pool = shard j with
		// probability k_j/Σk, then a uniform segment h inside shard j.
		u := ses.rng.Intn(total)
		j := 0
		for u >= ses.plans[j].Segments() {
			u -= ses.plans[j].Segments()
			j++
		}
		if st != nil && j < len(st.ShardRounds) {
			st.ShardRounds[j]++
		}
		lqh := ses.plans[j].SegmentNear(u, st)
		sigmaFail++
		if sigmaFail >= s.sigma {
			// Σ-budget exhausted: shrink the pool. Two invariants guard
			// the halving — both no-ops at S=1, so bit-compatibility is
			// untouched:
			//
			//   - A shard at k=1 is floored there while any other shard
			//     still has k>1. The per-round emit probability 1/(λ·Σk)
			//     is uniform over the union only while every shard keeps
			//     k_j ≥ 1; letting a small-estimate shard fall to 0 ahead
			//     of the rest would erase its ball from all later periods
			//     and bias the output against it. Shards therefore leave
			//     the pool only all together, from the all-ones floor.
			//   - At the all-ones floor a halving would zero the whole
			//     pool; the floor grace is spent first (see the field doc
			//     — this is where the unsharded loop's k<S tail periods
			//     are recovered).
			maxSeg := 0
			for i := range ses.plans {
				if k := ses.plans[i].Segments(); k > maxSeg {
					maxSeg = k
				}
			}
			switch {
			case maxSeg > 1:
				for i := range ses.plans {
					if ses.plans[i].Segments() > 1 {
						ses.plans[i].Halve()
					}
				}
				total = 0
				for i := range ses.plans {
					total += ses.plans[i].Segments()
				}
			case grace > 0:
				grace--
			default:
				for i := range ses.plans {
					ses.plans[i].Halve()
				}
				total = 0
			}
			sigmaFail = 0
		}
		if lqh == 0 {
			continue
		}
		p := float64(lqh) / s.lambda
		if p > 1 {
			if st != nil {
				st.Clamped = true
			}
			p = 1
		}
		if ses.rng.Bernoulli(p) {
			if st != nil {
				st.FinalK = total
				st.ShardChosen = j
				st.Found = true
			}
			return s.toGlobal[j][ses.plans[j].Pick(&ses.rng)], true
		}
	}
	if st != nil {
		st.Found = false
	}
	return 0, false
}

// Sample returns a uniform, independent sample from the union ball
// B_S(q, r), or ok=false when no shard recalls a near point (or the
// rejection budget is exhausted, a probability-≤δ event under the
// paper's constants).
func (s *Sharded[P]) Sample(q P, st *core.QueryStats) (id int32, ok bool) {
	id, err := s.SampleContext(context.Background(), q, st)
	return id, err == nil
}

// SampleContext is Sample under a context: the rejection loop polls
// ctx.Err() every ctxCheckRounds rounds, and a failed but uncanceled
// query returns ErrNoSample (the Sampler contract).
func (s *Sharded[P]) SampleContext(ctx context.Context, q P, st *core.QueryStats) (int32, error) {
	ses := s.begin(q, st, false)
	defer s.release(ses)
	id, ok := s.drawResolved(ctx, ses, st)
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if !ok {
		return 0, core.ErrNoSample
	}
	return id, nil
}

// SampleK returns k independent with-replacement samples from the union
// ball. Shards are resolved and estimated once — fanned out across
// workers — and all k rejection loops share the per-shard plans,
// near-caches and merged cursors, so hashing, sketch merging and every
// distinct distance evaluation are paid once, not k times.
func (s *Sharded[P]) SampleK(q P, k int, st *core.QueryStats) []int32 {
	if k <= 0 {
		return nil
	}
	return s.SampleKInto(q, k, make([]int32, 0, k), st)
}

// SampleKInto is SampleK writing into dst (reset to length zero and
// grown as needed), the bulk variant that amortizes the output buffer.
func (s *Sharded[P]) SampleKInto(q P, k int, dst []int32, st *core.QueryStats) []int32 {
	dst = dst[:0]
	if k <= 0 {
		return dst
	}
	ses := s.begin(q, st, true)
	defer s.release(ses)
	for i := 0; i < k; i++ {
		if id, ok := s.drawResolved(context.Background(), ses, st); ok {
			dst = append(dst, id)
		}
	}
	return dst
}

// Samples returns an unbounded stream of independent uniform samples
// from the union ball. Shards are resolved and estimated once per
// stream; every yielded id costs one two-stage rejection loop on the
// shared plans. The stream ends when the consumer breaks, ctx is done
// (yielding ctx.Err() once), or a draw fails (yielding ErrNoSample).
func (s *Sharded[P]) Samples(ctx context.Context, q P) iter.Seq2[int32, error] {
	return func(yield func(int32, error) bool) {
		ses := s.begin(q, nil, false)
		defer s.release(ses)
		for {
			id, ok := s.drawResolved(ctx, ses, nil)
			if err := ctx.Err(); err != nil {
				yield(0, err)
				return
			}
			if !ok {
				yield(0, core.ErrNoSample)
				return
			}
			if !yield(id, nil) {
				return
			}
		}
	}
}
