package shard

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"math/bits"
	"runtime"
	"sync/atomic"
	"time"

	"fairnn/internal/core"
	"fairnn/internal/fault"
	"fairnn/internal/lsh"
	"fairnn/internal/obs"
	"fairnn/internal/rng"
)

// ctxCheckRounds is the rejection-loop cancellation granularity, kept
// equal to the unsharded loop's (internal/core/context.go) so a
// single-shard sharded query checks — and therefore draws and returns —
// exactly like the structure it wraps.
const ctxCheckRounds = 64

// Sharded is a fair sampler over a point set partitioned across S
// shards, each backed by its own Section 4 (r-NNIS) structure. It
// satisfies the façade's full Sampler contract.
//
// A query arms one ShardPlan per shard (hashing q in the shard's tables
// and merging its count-distinct sketches into the per-shard estimate
// ŝ_j), then repeats the two-stage round: pick a segment uniformly from
// the union of all shards' segment pools — i.e. shard j with probability
// k_j/Σk, k_j ∝ ŝ_j — count the segment's near points exactly, accept
// with probability λ_q,h/λ, and return a uniform near point of the
// accepted segment, translated to its global id. Each accepted round is
// exactly uniform over the union ball for any segment-count vector (the
// rejection step absorbs all estimate error; see
// internal/core/shardplan.go), and every draw spends fresh randomness,
// so consecutive outputs are independent — Theorem 2 lifted to the
// partitioned index.
//
// Each shard is an explicit failure domain: every per-shard operation
// crosses the Backend seam and, when a Resilience policy (or a fault
// injector) is configured, runs under per-attempt deadlines, bounded
// jittered retries, panic containment, and the health registry's
// fail-fast gate. A shard that exhausts its budget either fails the
// query with a typed *ShardError or — in degraded mode — leaves the
// union pool, and the same per-round arithmetic above makes every
// accepted draw exactly uniform over the *surviving* shards' union ball
// (the loss is reported on QueryStats.Degraded). With the policy zero
// and no injector, queries take the direct path: no wrappers, no extra
// randomness, no allocations — bit-identical to the pre-resilience
// sampler.
//
// All randomness of one logical query (a Sample, or all draws of one
// SampleK or Samples stream) comes from a single stream split off the
// seed by an atomic query counter, so outputs are deterministic per
// (structure, query index) no matter how the per-shard resolve work is
// scheduled across workers. With S=1 the stream, the wrapped structure
// and the round arithmetic all coincide with the unsharded sampler's, so
// a one-shard Sharded is bit-identical to the Independent it wraps.
// Backoff jitter is drawn from a per-(query, shard, op) substream
// derived from the same seed — never from the query's main stream — so
// fault-free queries stay bit-identical even with retries configured.
//
// Query methods are safe for concurrent use: per-shard scratch comes
// from each shard's bounded querier pool and sessions are pooled the
// same way. Steady-state Sample performs zero heap allocations.
type Sharded[P any] struct {
	shards   []*core.Independent[P]
	backends []Backend[P]
	toGlobal [][]int32 // per shard: local id -> global id
	lambda   float64
	sigma    int
	partName string
	size     int
	// floorGrace is ⌈log₂ S⌉: the number of extra Σ-periods a draw spends
	// at the all-ones segment floor before giving up. The unsharded loop
	// ends with one Σ-period each at k = ..., 2, 1; with S live shards the
	// pool cannot shrink below S, so those final periods — which carry
	// most of the loop's tail success mass — are unreachable. Holding the
	// floor for ⌈log₂ S⌉ extra periods restores the unsharded failure
	// probability δ, and is exactly zero extra periods at S=1 (the
	// bit-compatibility contract).
	floorGrace int

	// res is the resolved resilience policy; resOn routes queries through
	// the resilient call path and is set when any policy field is non-zero
	// or a fault injector is configured.
	res   Resilience
	resOn bool
	// health is the per-sampler shard health registry (see health.go).
	health *healthRegistry
	inj    *fault.Injector

	// met is the shard-layer instrument bundle (nil without a registry —
	// contractually invisible); trc is the sampled per-query tracer (nil
	// when tracing is off).
	met *shardMetrics
	trc *obs.Tracer

	qseed uint64
	qctr  atomic.Uint64

	// pool is the capped session free list (the querier-pool discipline,
	// one level up, on core's shared BoundedPool): sessions beyond the cap
	// are dropped for the GC, so a concurrency burst cannot pin scratch
	// forever.
	pool core.BoundedPool[session[P]]
}

// session is the pooled per-query scratch of the sharded fan-out: one
// armed plan per shard, the query's single RNG stream, the per-worker
// stats used by the parallel arm barrier, and the resilience scratch —
// which shards this query has lost, their last-known estimates, the arm
// errors, and the backoff-jitter seed (kept here so a stats-enabled bulk
// query stays allocation-free in steady state).
type session[P any] struct {
	plans []core.ShardPlan[P]
	rng   rng.Source
	subs  []core.QueryStats
	// dead marks shards this query has lost (arm failure or mid-draw
	// budget exhaustion); est remembers a lost shard's per-query estimate
	// ŝ_j when it armed before dying (-1 = unknown), errs the arm errors.
	// All three are untouched on the plain (resilience-off) path.
	dead   []bool
	est    []float64
	errs   []error
	boSeed uint64
	// trace is non-nil for the 1-in-N sampled queries (see obs.Tracer);
	// the decision is a pure hash of the query seed, never a stream draw.
	trace *obs.Trace
	// mstats collects per-draw counter deltas for the telemetry bundle
	// when the caller passed a nil *core.QueryStats.
	mstats core.QueryStats
}

// Config collects the build-time knobs of a sharded sampler beyond the
// data itself. The zero value of every field is valid: RoundRobin
// partitioning, zero resilience (the direct query path), no injector.
type Config struct {
	// Shards is the shard count S (must be ≥ 1).
	Shards int
	// Partitioner assigns points to shards; nil defaults to RoundRobin.
	Partitioner Partitioner
	// Seed derives every shard's structure seed and the query streams.
	Seed uint64
	// Resilience is the per-shard-call fault-tolerance policy.
	Resilience Resilience
	// Injector, when non-nil, interposes the fault-injection harness on
	// every backend call (tests only; must be built for the same shard
	// count).
	Injector *fault.Injector
	// Obs, when non-nil, registers the shard-layer telemetry bundle
	// (draw loop, per-(shard, op) backend-call latency, retries, backoff,
	// health transitions) and records into it. A nil registry is
	// contractually invisible: bit-identical streams, zero allocations.
	Obs *obs.Registry
	// TraceEveryN, with Obs set, samples roughly one query in N into the
	// registry's tracer (structured span trees over the backend seam);
	// 0 disables tracing. The sampling decision is a pure hash of the
	// query seed through a derived substream — never a stream draw.
	TraceEveryN int
}

// Build partitions points across shards with part (nil defaults to
// RoundRobin) and constructs one Section 4 structure per shard with the
// zero resilience policy — the historical constructor, kept as the
// direct path's entry point. See BuildConfig for the full set of knobs.
func Build[P any](space core.Space[P], family lsh.Family[P], paramsFor func(shardSize int) lsh.Params, points []P, radius float64, opts core.IndependentOptions, shards int, part Partitioner, seed uint64) (*Sharded[P], error) {
	return BuildConfig(space, family, paramsFor, points, radius, opts, Config{Shards: shards, Partitioner: part, Seed: seed})
}

// BuildConfig builds a sharded sampler: points are partitioned across
// cfg.Shards shards and one Section 4 structure is constructed per
// shard, in parallel across up to GOMAXPROCS workers. paramsFor chooses
// the LSH (K, L) for one shard from its point count — each shard tunes
// to its own size. opts is resolved once against the global point count,
// so every shard shares one λ and one Σ budget (the acceptance test must
// be identical across shards for the union draw to be uniform); per-shard
// structures get distinct derived seeds, so LSH recall failures are
// independent across shards, and shard 0's seed equals the global seed —
// with S=1 the build is bit-identical to the unsharded constructor's.
//
// A panic inside a build worker does not crash the process: it is
// recovered with its stack and surfaced as a typed *core.BuildError
// naming the shard and, when point-scoped, the offending point index.
func BuildConfig[P any](space core.Space[P], family lsh.Family[P], paramsFor func(shardSize int) lsh.Params, points []P, radius float64, opts core.IndependentOptions, cfg Config) (*Sharded[P], error) {
	n := len(points)
	shards := cfg.Shards
	if shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d < 1", shards)
	}
	if n == 0 {
		return nil, errors.New("shard: empty point set")
	}
	if shards > n {
		return nil, fmt.Errorf("shard: %d shards over %d points leaves shards empty", shards, n)
	}
	if cfg.Injector != nil && cfg.Injector.Shards() != shards {
		return nil, fmt.Errorf("shard: fault injector built for %d shards, sampler has %d", cfg.Injector.Shards(), shards)
	}
	part := cfg.Partitioner
	if part == nil {
		part = RoundRobin{}
	}
	opts = opts.Resolved(n)

	local := make([][]P, shards)
	toGlobal := make([][]int32, shards)
	for i, p := range points {
		j := part.Assign(i, n, shards)
		if j < 0 || j >= shards {
			return nil, fmt.Errorf("shard: partitioner %q assigned point %d to shard %d of %d", part.Name(), i, j, shards)
		}
		local[j] = append(local[j], p)
		toGlobal[j] = append(toGlobal[j], int32(i))
	}
	for j := range local {
		if len(local[j]) == 0 {
			return nil, fmt.Errorf("shard: partitioner %q left shard %d empty (use fewer shards or RoundRobin)", part.Name(), j)
		}
	}

	s := &Sharded[P]{
		shards:     make([]*core.Independent[P], shards),
		toGlobal:   toGlobal,
		lambda:     float64(opts.Lambda),
		sigma:      opts.SigmaBudget,
		partName:   part.Name(),
		size:       n,
		floorGrace: bits.Len(uint(shards - 1)),
		res:        cfg.Resilience.withDefaults(),
		resOn:      cfg.Resilience.enabled() || cfg.Injector != nil,
		inj:        cfg.Injector,
	}
	s.health = newHealthRegistry(shards, s.res.ProbeEvery)
	s.met = newShardMetrics(cfg.Obs, shards)
	if cfg.TraceEveryN > 0 {
		s.trc = cfg.Obs.EnableTracing(cfg.TraceEveryN, traceRingCapacity)
	}
	errs := make([]error, shards)
	fanOut(shards, func(j int) {
		defer func() {
			// Containment for panics outside core's own build passes
			// (paramsFor, partition-sized allocations): name the shard,
			// keep the fan-out draining, fail the build with a typed
			// error instead of killing the process.
			if r := recover(); r != nil {
				errs[j] = shardBuildPanic(j, r)
			}
		}()
		d, err := core.NewIndependent(space, family, paramsFor(len(local[j])), local[j], radius, opts, ShardSeed(cfg.Seed, j))
		var be *core.BuildError
		if errors.As(err, &be) {
			be.Shard = j
		}
		s.shards[j], errs[j] = d, err
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	s.backends = make([]Backend[P], shards)
	for j := range s.backends {
		var b Backend[P] = &inProc[P]{d: s.shards[j]}
		if cfg.Injector != nil {
			b = &faultBackend[P]{next: b, inj: cfg.Injector, shard: j}
		}
		s.backends[j] = b
	}
	s.qseed = s.shards[0].QueryStreamSeed()
	// One retention knob governs both pooling layers: the session pool
	// honors the same (resolved) MaxRetainedQueriers as each shard's
	// querier pool.
	s.pool.SetCap(opts.Memo.Resolved().MaxRetainedQueriers)
	return s, nil
}

// shardBuildPanic wraps a panic recovered from a shard-build worker into
// a *core.BuildError naming the shard (reusing an already-captured
// *core.PanicError rather than double-wrapping).
func shardBuildPanic(j int, recovered any) error {
	pe, ok := recovered.(*core.PanicError)
	if !ok {
		pe = core.NewPanicError(recovered)
	}
	return &core.BuildError{Shard: j, Point: -1, Table: -1, Err: pe}
}

// fanOut runs fn(0..n-1) across up to min(GOMAXPROCS, n) workers via
// core.ParallelRange (one shared worker pattern instead of a private
// copy). With one worker it runs inline, spawning nothing. A worker
// panic is contained by ParallelRange and re-panicked on the caller's
// goroutine as a *core.PanicError.
//
//fairnn:noalloc
//fairnn:fanout-safe delegates containment to core.ParallelRange
func fanOut(n int, fn func(i int)) {
	//fairnn:allocok one fan-out closure per parallel arm, not on the steady-state draw path
	core.ParallelRange(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Size returns the total number of indexed points across shards.
func (s *Sharded[P]) Size() int { return s.size }

// Shards returns the shard count S.
func (s *Sharded[P]) Shards() int { return len(s.backends) }

// ShardSizes returns the per-shard point counts (a fresh slice).
func (s *Sharded[P]) ShardSizes() []int {
	sizes := make([]int, len(s.backends))
	for j, b := range s.backends {
		sizes[j] = b.N()
	}
	return sizes
}

// PartitionerName reports the partitioning scheme the index was built
// with.
func (s *Sharded[P]) PartitionerName() string { return s.partName }

// Lambda returns the shared per-segment cap λ of the acceptance test.
func (s *Sharded[P]) Lambda() int { return int(s.lambda) }

// ResiliencePolicy returns the resolved resilience policy the sampler
// was built with (defaults filled in; the zero policy resolves its
// backoff/probe fields but still disables the resilient path).
func (s *Sharded[P]) ResiliencePolicy() Resilience { return s.res }

// Point returns the indexed point with the given global id. It is only
// available on an in-process sampler: a network-connected one holds no
// points (they live on the servers), and introspection there belongs to
// the serving side.
func (s *Sharded[P]) Point(id int32) P {
	if s.shards == nil {
		panic("shard: Point is not available on a network-connected sampler (points live on the servers)")
	}
	// Global ids are dense in [0, n); locate the owning shard by scanning
	// the translation tables (introspection only — queries never call this).
	for j, ids := range s.toGlobal {
		lo, hi := 0, len(ids)
		for lo < hi {
			mid := (lo + hi) / 2
			if ids[mid] < id {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(ids) && ids[lo] == id {
			return s.shards[j].Point(int32(lo))
		}
	}
	panic("shard: id out of range")
}

// RetainedScratchBytes sums the pooled per-query scratch every shard
// currently pins between queries.
func (s *Sharded[P]) RetainedScratchBytes() int {
	total := 0
	for _, b := range s.backends {
		total += b.RetainedScratchBytes()
	}
	return total
}

// begin checks out a session, seeds the query's single RNG stream from
// the atomic query counter, and arms one plan per shard — in parallel
// across workers when parallel is set (the SampleK bulk path; arming
// draws no randomness, so scheduling cannot change any output). Per-shard
// cost counters land in st; st.ShardEstimates records each ŝ_j and
// st.SketchEstimate their sum. Under a resilience policy each arm runs
// through callShard; an error return means the query cannot proceed (a
// *ShardError with degradation off, or ErrDegraded when every shard was
// lost) and no session is retained.
//
//fairnn:noalloc
func (s *Sharded[P]) begin(ctx context.Context, q P, st *core.QueryStats, parallel bool) (*session[P], error) {
	ses := s.pool.Get()
	if ses == nil {
		n := len(s.backends)
		ses = &session[P]{
			plans: make([]core.ShardPlan[P], n),
			dead:  make([]bool, n),
			est:   make([]float64, n),
			errs:  make([]error, n),
		}
	}
	seed := s.qseed ^ rng.Mix64(s.qctr.Add(1))
	ses.rng.Seed(seed)
	ses.boSeed = rng.Mix64(seed ^ 0xb0ff5eed)
	ses.trace = nil
	if t := s.trc; t != nil && t.ShouldSample(seed) {
		// The 1-in-N traced path may allocate; the decision above is a
		// pure hash of the seed, so untraced queries are untouched.
		ses.trace = t.Start(seed)
	}
	if st != nil {
		st.Degraded.LostShards = st.Degraded.LostShards[:0]
		st.Degraded.LostPoints = 0
		st.Degraded.Coverage = 0
	}
	if s.resOn {
		for j := range ses.dead {
			ses.dead[j] = false
			ses.est[j] = -1
			ses.errs[j] = nil
		}
	}
	if parallel && runtime.GOMAXPROCS(0) > 1 && len(s.backends) > 1 {
		// QueryStats is not safe for concurrent mutation: workers fill
		// per-shard stats (session-pooled), folded into st after the
		// barrier.
		var sub []core.QueryStats
		if st != nil {
			if cap(ses.subs) < len(s.backends) {
				ses.subs = make([]core.QueryStats, len(s.backends))
			}
			sub = ses.subs[:len(s.backends)]
			for j := range sub {
				sub[j] = core.QueryStats{}
			}
		}
		fanOut(len(s.backends), func(j int) {
			var sj *core.QueryStats
			if sub != nil {
				sj = &sub[j]
			}
			s.armShard(ctx, ses, j, q, sj)
		})
		for j := range sub {
			st.Merge(sub[j])
		}
	} else {
		for j := range ses.plans {
			s.armShard(ctx, ses, j, q, st)
		}
	}
	if s.resOn {
		if err := s.armVerdict(ses); err != nil {
			s.release(ses)
			return nil, err
		}
	}
	if st != nil {
		if cap(st.ShardRounds) < len(ses.plans) {
			st.ShardRounds = make([]int, len(ses.plans))
		} else {
			st.ShardRounds = st.ShardRounds[:len(ses.plans)]
			clear(st.ShardRounds)
		}
		if cap(st.ShardEstimates) < len(ses.plans) {
			st.ShardEstimates = make([]float64, len(ses.plans))
		} else {
			st.ShardEstimates = st.ShardEstimates[:len(ses.plans)]
		}
		total := 0.0
		for j := range ses.plans {
			st.ShardEstimates[j] = ses.plans[j].Estimate()
			total += ses.plans[j].Estimate()
		}
		st.SketchEstimate = total
		if s.resOn {
			s.noteDegraded(ses, st)
		}
	}
	return ses, nil
}

// armShard arms shard j's plan: a direct backend call on the plain path,
// or callShard's deadline/retry/health envelope under a policy. A shard
// that cannot be armed is recorded dead in the session with its error;
// the verdict (fail the query vs degrade) is taken by the caller after
// all shards report, so the parallel fan-out never short-circuits.
//
//fairnn:noalloc
func (s *Sharded[P]) armShard(ctx context.Context, ses *session[P], j int, q P, st *core.QueryStats) {
	var sp *obs.Span
	if ses.trace != nil {
		sp = ses.trace.Begin("arm", j)
	}
	if !s.resOn {
		m := s.met
		if m == nil && sp == nil {
			_ = s.backends[j].Arm(ctx, &ses.plans[j], q, st)
			return
		}
		t0 := time.Now()
		err := s.backends[j].Arm(ctx, &ses.plans[j], q, st)
		m.opOK(j, opArm, time.Since(t0))
		if sp != nil {
			sp.Done(err)
		}
		return
	}
	//fairnn:allocok resilience envelope: the resOn path trades one closure per call for panic/deadline containment
	err := s.callShard(ctx, ses, j, "arm", opArm, saltArm, sp, func(actx context.Context) error {
		// Each attempt re-arms from a clean plan: a prior attempt may
		// have panicked or timed out partway through arming.
		ses.plans[j].Abort()
		return s.backends[j].Arm(actx, &ses.plans[j], q, st)
	})
	if sp != nil {
		sp.Done(err)
	}
	if err != nil {
		ses.plans[j].Abort()
		ses.dead[j] = true
		ses.errs[j] = err
		return
	}
	ses.est[j] = ses.plans[j].Estimate()
	if s.health.ok(j, ses.est[j]) {
		s.met.readmitted()
	}
}

// armVerdict decides what an arm round with failures means: with
// degradation off, the first shard's error fails the query; with it on,
// the query proceeds over the survivors unless none remain.
//
//fairnn:noalloc
func (s *Sharded[P]) armVerdict(ses *session[P]) error {
	var first error
	live := false
	for j := range ses.dead {
		if ses.dead[j] {
			if first == nil {
				first = ses.errs[j]
			}
		} else {
			live = true
		}
	}
	if first == nil {
		return nil
	}
	if !s.res.Degraded {
		return first
	}
	if !live {
		return ErrDegraded
	}
	return nil
}

// noteDegraded refreshes st.Degraded from the session's dead set: the
// lost shards, their total point count, and the coverage fraction — the
// survivors' summed per-query estimates over the estimated union total,
// where a lost shard contributes its own per-query ŝ_j when it armed
// before dying, its last health-registry estimate when another query
// armed it, and a point-share density extrapolation otherwise.
//
//fairnn:noalloc
func (s *Sharded[P]) noteDegraded(ses *session[P], st *core.QueryStats) {
	if st == nil {
		return
	}
	st.Degraded.LostShards = st.Degraded.LostShards[:0]
	liveEst, lostEst := 0.0, 0.0
	livePts, lostPts := 0, 0
	for j := range ses.dead {
		if ses.dead[j] {
			st.Degraded.LostShards = append(st.Degraded.LostShards, j)
			lostPts += s.backends[j].N()
		} else {
			liveEst += ses.plans[j].Estimate()
			livePts += s.backends[j].N()
		}
	}
	st.Degraded.LostPoints = lostPts
	if len(st.Degraded.LostShards) == 0 {
		st.Degraded.Coverage = 0
		return
	}
	for j := range ses.dead {
		if !ses.dead[j] {
			continue
		}
		if ses.est[j] >= 0 {
			lostEst += ses.est[j]
		} else if e, ok := s.health.lastEstimate(j); ok {
			lostEst += e
		} else if livePts > 0 {
			lostEst += liveEst / float64(livePts) * float64(s.backends[j].N())
		}
	}
	if total := liveEst + lostEst; total > 0 {
		st.Degraded.Coverage = liveEst / total
	} else {
		st.Degraded.Coverage = 1
	}
}

// loseShard handles a shard whose budget was exhausted mid-draw. With
// degradation off the cause fails the query. In degraded mode the shard
// leaves the union pool — its per-query estimate is remembered for the
// coverage fraction, its plan aborted so the stale segment weight cannot
// re-enter the pool — and the draw continues over the survivors: the
// returned total is the surviving pool's segment count. Losing the last
// live shard returns ErrDegraded.
//
//fairnn:noalloc
func (s *Sharded[P]) loseShard(ses *session[P], j int, st *core.QueryStats, cause error) (int, error) {
	if !s.res.Degraded {
		return 0, cause
	}
	if !ses.dead[j] {
		ses.dead[j] = true
		ses.est[j] = ses.plans[j].Estimate()
		ses.plans[j].Abort()
		s.met.lost()
	}
	s.noteDegraded(ses, st)
	total := 0
	live := false
	for i := range ses.plans {
		if !ses.dead[i] {
			live = true
			total += ses.plans[i].Segments()
		}
	}
	if !live {
		return 0, ErrDegraded
	}
	return total, nil
}

// segmentNearResilient is SegmentNear through callShard's envelope.
//
//fairnn:noalloc
func (s *Sharded[P]) segmentNearResilient(ctx context.Context, ses *session[P], j, h int, st *core.QueryStats, sp *obs.Span) (int, error) {
	n := 0
	//fairnn:allocok resilience envelope: the resOn path trades one closure per call for panic/deadline containment
	err := s.callShard(ctx, ses, j, "segment", opSegment, saltSegment, sp, func(actx context.Context) error {
		v, err := s.backends[j].SegmentNear(actx, &ses.plans[j], h, st)
		n = v
		return err
	})
	return n, err
}

// pickResilient is Pick through callShard's envelope.
//
//fairnn:noalloc
func (s *Sharded[P]) pickResilient(ctx context.Context, ses *session[P], j int, sp *obs.Span) (int32, error) {
	var id int32
	//fairnn:allocok resilience envelope: the resOn path trades one closure per call for panic/deadline containment
	err := s.callShard(ctx, ses, j, "pick", opPick, saltPick, sp, func(actx context.Context) error {
		v, err := s.backends[j].Pick(actx, &ses.plans[j], &ses.rng)
		id = v
		return err
	})
	return id, err
}

// release closes every plan (returning the shards' pooled queriers) and
// recycles the session.
//
//fairnn:noalloc
func (s *Sharded[P]) release(ses *session[P]) {
	if ses.trace != nil {
		s.trc.Publish(ses.trace)
		ses.trace = nil
	}
	for j := range ses.plans {
		ses.plans[j].Close()
	}
	s.pool.Put(ses)
}

// drawResolved is the telemetry choke point around drawOnce: without a
// registry it is a tail call (the disabled path pays nothing); with one
// it times the draw and records outcome, rejection-round and scoring
// deltas, and degradation into the layer="shard" bundle, counting into
// the session's scratch stats when the caller passed nil. Metrics
// writes are observational and draw no randomness, so same-seed streams
// stay bit-identical either way.
//
//fairnn:noalloc
func (s *Sharded[P]) drawResolved(ctx context.Context, ses *session[P], st *core.QueryStats) (int32, bool, error) {
	m := s.met
	if m == nil {
		return s.drawOnce(ctx, ses, st)
	}
	if st == nil {
		ses.mstats = core.QueryStats{}
		st = &ses.mstats
	}
	preRounds, preHits := st.Rounds, st.ScoreCacheHits
	preBatch, preEvals := st.BatchScored, st.ScoreEvals
	degraded := false
	if s.resOn {
		for j := range ses.dead {
			if ses.dead[j] {
				degraded = true
				break
			}
		}
	}
	t0 := time.Now()
	id, ok, err := s.drawOnce(ctx, ses, st)
	if !degraded && s.resOn {
		// A shard lost during this draw degrades it too.
		for j := range ses.dead {
			if ses.dead[j] {
				degraded = true
				break
			}
		}
	}
	m.draw.ObserveDraw(time.Since(t0), ok, st.Rounds-preRounds, st.ScoreCacheHits-preHits,
		st.BatchScored-preBatch, st.ScoreEvals-preEvals, degraded)
	return id, ok, err
}

// drawOnce runs one two-stage rejection draw against an armed
// session. The round structure — counter, ctx poll cadence, segment
// pick, Σ-budget halving order, acceptance clamp — mirrors the unsharded
// sampleResolved exactly, so with S=1 the randomness is spent call for
// call on the same stream. A non-nil error reports a shard failure the
// policy could not absorb (degradation off, or the last live shard
// lost); ok=false with a nil error is the ordinary no-sample outcome.
//
//fairnn:noalloc
func (s *Sharded[P]) drawOnce(ctx context.Context, ses *session[P], st *core.QueryStats) (int32, bool, error) {
	for j := range ses.plans {
		ses.plans[j].ResetDraw()
	}
	total := 0
	for j := range ses.plans {
		total += ses.plans[j].Segments()
	}
	if st != nil {
		st.ShardChosen = -1
	}
	if total == 0 {
		if st != nil {
			st.Found = false
		}
		return 0, false, nil
	}
	sigmaFail := 0
	grace := s.floorGrace
	for rounds := 0; total >= 1; {
		if st != nil {
			st.Rounds++
		}
		rounds++
		if rounds%ctxCheckRounds == 0 && ctx.Err() != nil {
			if st != nil {
				st.Found = false
			}
			return 0, false, nil
		}
		// One uniform pick over the union segment pool = shard j with
		// probability k_j/Σk, then a uniform segment h inside shard j.
		u := ses.rng.Intn(total)
		j := 0
		for u >= ses.plans[j].Segments() {
			u -= ses.plans[j].Segments()
			j++
		}
		if st != nil && j < len(st.ShardRounds) {
			st.ShardRounds[j]++
		}
		var sp *obs.Span
		if ses.trace != nil {
			sp = ses.trace.Begin("segment", j)
		}
		var lqh int
		if s.resOn {
			n, err := s.segmentNearResilient(ctx, ses, j, u, st, sp)
			if err != nil {
				if sp != nil {
					sp.Note("shard lost: leaving union pool")
					sp.Done(err)
				}
				total, err = s.loseShard(ses, j, st, err)
				if err != nil {
					if st != nil {
						st.Found = false
					}
					return 0, false, err
				}
				if total == 0 {
					break
				}
				// The failed round spent no Σ budget: the call reported
				// nothing about near density, so sigmaFail is untouched.
				continue
			}
			lqh = n
		} else {
			lqh, _ = s.backends[j].SegmentNear(ctx, &ses.plans[j], u, st)
		}
		if sp != nil {
			sp.Done(nil)
		}
		sigmaFail++
		if sigmaFail >= s.sigma {
			// Σ-budget exhausted: shrink the pool. Two invariants guard
			// the halving — both no-ops at S=1, so bit-compatibility is
			// untouched:
			//
			//   - A shard at k=1 is floored there while any other shard
			//     still has k>1. The per-round emit probability 1/(λ·Σk)
			//     is uniform over the union only while every shard keeps
			//     k_j ≥ 1; letting a small-estimate shard fall to 0 ahead
			//     of the rest would erase its ball from all later periods
			//     and bias the output against it. Shards therefore leave
			//     the pool only all together, from the all-ones floor.
			//   - At the all-ones floor a halving would zero the whole
			//     pool; the floor grace is spent first (see the field doc
			//     — this is where the unsharded loop's k<S tail periods
			//     are recovered).
			maxSeg := 0
			for i := range ses.plans {
				if k := ses.plans[i].Segments(); k > maxSeg {
					maxSeg = k
				}
			}
			switch {
			case maxSeg > 1:
				for i := range ses.plans {
					if ses.plans[i].Segments() > 1 {
						ses.plans[i].Halve()
					}
				}
				total = 0
				for i := range ses.plans {
					total += ses.plans[i].Segments()
				}
			case grace > 0:
				grace--
			default:
				for i := range ses.plans {
					ses.plans[i].Halve()
				}
				total = 0
			}
			sigmaFail = 0
		}
		if lqh == 0 {
			continue
		}
		p := float64(lqh) / s.lambda
		if p > 1 {
			if st != nil {
				st.Clamped = true
			}
			p = 1
		}
		if ses.rng.Bernoulli(p) {
			var psp *obs.Span
			if ses.trace != nil {
				psp = ses.trace.Begin("pick", j)
			}
			var local int32
			if s.resOn {
				v, err := s.pickResilient(ctx, ses, j, psp)
				if err != nil {
					if psp != nil {
						psp.Note("shard lost: leaving union pool")
						psp.Done(err)
					}
					total, err = s.loseShard(ses, j, st, err)
					if err != nil {
						if st != nil {
							st.Found = false
						}
						return 0, false, err
					}
					if total == 0 {
						break
					}
					continue
				}
				local = v
			} else {
				local, _ = s.backends[j].Pick(ctx, &ses.plans[j], &ses.rng)
			}
			if psp != nil {
				psp.Done(nil)
			}
			if st != nil {
				st.FinalK = total
				st.ShardChosen = j
				st.Found = true
			}
			return s.toGlobal[j][local], true, nil
		}
	}
	if st != nil {
		st.Found = false
	}
	return 0, false, nil
}

// Sample returns a uniform, independent sample from the union ball
// B_S(q, r), or ok=false when no shard recalls a near point, the
// rejection budget is exhausted (a probability-≤δ event under the
// paper's constants), or a shard failure the resilience policy could not
// absorb — use SampleContext for the typed error.
//
//fairnn:noalloc
func (s *Sharded[P]) Sample(q P, st *core.QueryStats) (id int32, ok bool) {
	id, err := s.SampleContext(context.Background(), q, st)
	return id, err == nil
}

// SampleContext is Sample under a context: the rejection loop polls
// ctx.Err() every ctxCheckRounds rounds, and a failed but uncanceled
// query returns ErrNoSample (the Sampler contract). Shard failures
// surface as a *ShardError (degradation off) or ErrDegraded (every
// shard lost); both match errors.Is(err, ErrDegraded).
//
//fairnn:noalloc
func (s *Sharded[P]) SampleContext(ctx context.Context, q P, st *core.QueryStats) (int32, error) {
	ses, err := s.begin(ctx, q, st, false)
	if err != nil {
		return 0, err
	}
	defer s.release(ses)
	id, ok, derr := s.drawResolved(ctx, ses, st)
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if derr != nil {
		return 0, derr
	}
	if !ok {
		return 0, core.ErrNoSample
	}
	return id, nil
}

// SampleK returns k independent with-replacement samples from the union
// ball. Shards are resolved and estimated once — fanned out across
// workers — and all k rejection loops share the per-shard plans,
// near-caches and merged cursors, so hashing, sketch merging and every
// distinct distance evaluation are paid once, not k times.
func (s *Sharded[P]) SampleK(q P, k int, st *core.QueryStats) []int32 {
	if k <= 0 {
		return nil
	}
	return s.SampleKInto(q, k, make([]int32, 0, k), st)
}

// SampleKInto is SampleK writing into dst (reset to length zero and
// grown as needed), the bulk variant that amortizes the output buffer.
// A shard failure the policy cannot absorb ends the bulk early with the
// draws collected so far (st records the degradation, if any); callers
// needing the typed error should use SampleContext per draw.
//
//fairnn:noalloc
func (s *Sharded[P]) SampleKInto(q P, k int, dst []int32, st *core.QueryStats) []int32 {
	dst = dst[:0]
	if k <= 0 {
		return dst
	}
	ses, err := s.begin(context.Background(), q, st, true)
	if err != nil {
		return dst
	}
	defer s.release(ses)
	for i := 0; i < k; i++ {
		id, ok, err := s.drawResolved(context.Background(), ses, st)
		if err != nil {
			break
		}
		if ok {
			dst = append(dst, id)
		}
	}
	return dst
}

// Samples returns an unbounded stream of independent uniform samples
// from the union ball. Shards are resolved and estimated once per
// stream; every yielded id costs one two-stage rejection loop on the
// shared plans. The stream ends when the consumer breaks, ctx is done
// (yielding ctx.Err() once), a draw fails (yielding ErrNoSample), or a
// shard failure the policy cannot absorb occurs (yielding the typed
// error).
func (s *Sharded[P]) Samples(ctx context.Context, q P) iter.Seq2[int32, error] {
	return func(yield func(int32, error) bool) {
		ses, err := s.begin(ctx, q, nil, false)
		if err != nil {
			yield(0, err)
			return
		}
		defer s.release(ses)
		for {
			id, ok, derr := s.drawResolved(ctx, ses, nil)
			if err := ctx.Err(); err != nil {
				yield(0, err)
				return
			}
			if derr != nil {
				yield(0, derr)
				return
			}
			if !ok {
				yield(0, core.ErrNoSample)
				return
			}
			if !yield(id, nil) {
				return
			}
		}
	}
}
