package shard

// The resilience gauge behind scripts/bench.sh: it measures query
// latency (p50/p90/p99/p999 over many single draws, read from the
// shared obs latency histogram) on an 8-shard sampler in two states —
// all shards healthy, and 1 of 8 shards force-failed with degraded mode
// absorbing the loss — and reports machine-parseable RESILIENCE lines
// the bench script folds into the bench history (BENCH_PR10.json). The
// faulted numbers quantify the price of losing a failure domain: the
// first query pays the retry budget, steady state pays only the health
// registry's fail-fast gate plus periodic re-admission probes.
//
// Knobs (env): FAIRNN_RES_N (indexed points, default 30000; bench.sh
// sets a larger scale) and FAIRNN_RES_REPS (timed draws per state,
// default 2000).

import (
	"context"
	"fmt"
	"testing"
	"time"

	"fairnn/internal/core"
	"fairnn/internal/fault"
	"fairnn/internal/lsh"
	"fairnn/internal/obs"
)

// timeDraws runs reps single draws and returns their latency histogram.
func timeDraws(t *testing.T, s *Sharded[int], n, reps int) *obs.Histogram {
	t.Helper()
	h := obs.NewHistogram()
	ctx := context.Background()
	for i := 0; i < reps; i++ {
		q := (i * 997) % n
		start := time.Now()
		_, err := s.SampleContext(ctx, q, nil)
		h.Observe(time.Since(start))
		if err != nil {
			t.Fatalf("draw %d failed: %v", i, err)
		}
	}
	return h
}

// TestResilienceGauge compares healthy vs 1-of-8-shards-faulted query
// latency on the same workload. Correctness is asserted (near points
// only, degraded mode reports the outage); the timing lines are for the
// bench snapshot.
func TestResilienceGauge(t *testing.T) {
	n := envInt("FAIRNN_RES_N", 30000)
	reps := envInt("FAIRNN_RES_REPS", 2000)
	const S = 8
	const radius = 40
	pts := lineDataset(n)
	build := func(inj *fault.Injector) *Sharded[int] {
		s, err := BuildConfig[int](intSpace(), chunkFamily{width: 64}, constParams(lsh.Params{K: 1, L: 4}), pts, radius, core.IndependentOptions{}, Config{
			Shards: S,
			Seed:   991,
			Resilience: Resilience{
				Deadline: 50 * time.Millisecond,
				Retries:  1,
				Degraded: true,
			},
			Injector: inj,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	healthy := build(fault.New(S, 1)) // idle injector: same code path, no faults
	healthyLat := timeDraws(t, healthy, n, reps)

	faulted := build(fault.New(S, 1, fault.Spec{Shards: []int{3}, ErrRate: fault.Always}))
	faultedLat := timeDraws(t, faulted, n, reps)
	var st core.QueryStats
	if _, err := faulted.SampleContext(context.Background(), 0, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Degraded.Degraded() {
		t.Fatal("faulted gauge sampler not reporting degraded queries")
	}

	for _, g := range []struct {
		state string
		h     *obs.Histogram
	}{{"healthy", healthyLat}, {"faulted1of8", faultedLat}} {
		fmt.Printf("RESILIENCE state=%s shards=%d n=%d reps=%d p50_ns=%d p90_ns=%d p99_ns=%d p999_ns=%d\n",
			g.state, S, n, reps, g.h.Quantile(0.50), g.h.Quantile(0.90), g.h.Quantile(0.99), g.h.Quantile(0.999))
	}
}
