package shard

// The resilience gauge behind scripts/bench.sh: it measures query
// latency (p50/p99 over many single draws) on an 8-shard sampler in two
// states — all shards healthy, and 1 of 8 shards force-failed with
// degraded mode absorbing the loss — and reports machine-parseable
// RESILIENCE lines the bench script folds into BENCH_PR6.json. The
// faulted numbers quantify the price of losing a failure domain: the
// first query pays the retry budget, steady state pays only the health
// registry's fail-fast gate plus periodic re-admission probes.
//
// Knobs (env): FAIRNN_RES_N (indexed points, default 30000; bench.sh
// sets a larger scale) and FAIRNN_RES_REPS (timed draws per state,
// default 2000).

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"

	"fairnn/internal/core"
	"fairnn/internal/fault"
	"fairnn/internal/lsh"
)

// timeDraws runs reps single draws and returns per-draw latencies.
func timeDraws(t *testing.T, s *Sharded[int], n, reps int) []time.Duration {
	t.Helper()
	lat := make([]time.Duration, reps)
	ctx := context.Background()
	for i := 0; i < reps; i++ {
		q := (i * 997) % n
		start := time.Now()
		_, err := s.SampleContext(ctx, q, nil)
		lat[i] = time.Since(start)
		if err != nil {
			t.Fatalf("draw %d failed: %v", i, err)
		}
	}
	return lat
}

func percentile(lat []time.Duration, p float64) float64 {
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx].Nanoseconds())
}

// TestResilienceGauge compares healthy vs 1-of-8-shards-faulted query
// latency on the same workload. Correctness is asserted (near points
// only, degraded mode reports the outage); the timing lines are for the
// bench snapshot.
func TestResilienceGauge(t *testing.T) {
	n := envInt("FAIRNN_RES_N", 30000)
	reps := envInt("FAIRNN_RES_REPS", 2000)
	const S = 8
	const radius = 40
	pts := lineDataset(n)
	build := func(inj *fault.Injector) *Sharded[int] {
		s, err := BuildConfig[int](intSpace(), chunkFamily{width: 64}, constParams(lsh.Params{K: 1, L: 4}), pts, radius, core.IndependentOptions{}, Config{
			Shards: S,
			Seed:   991,
			Resilience: Resilience{
				Deadline: 50 * time.Millisecond,
				Retries:  1,
				Degraded: true,
			},
			Injector: inj,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	healthy := build(fault.New(S, 1)) // idle injector: same code path, no faults
	healthyLat := timeDraws(t, healthy, n, reps)

	faulted := build(fault.New(S, 1, fault.Spec{Shards: []int{3}, ErrRate: fault.Always}))
	faultedLat := timeDraws(t, faulted, n, reps)
	var st core.QueryStats
	if _, err := faulted.SampleContext(context.Background(), 0, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Degraded.Degraded() {
		t.Fatal("faulted gauge sampler not reporting degraded queries")
	}

	fmt.Printf("RESILIENCE state=healthy shards=%d n=%d reps=%d p50_ns=%.0f p99_ns=%.0f\n",
		S, n, reps, percentile(healthyLat, 0.50), percentile(healthyLat, 0.99))
	fmt.Printf("RESILIENCE state=faulted1of8 shards=%d n=%d reps=%d p50_ns=%.0f p99_ns=%.0f\n",
		S, n, reps, percentile(faultedLat, 0.50), percentile(faultedLat, 0.99))
}
