//go:build race

package shard

// raceEnabled reports whether the race detector is active; alloc-count
// assertions are skipped under -race (instrumentation allocates).
const raceEnabled = true
