package shard

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"time"

	"fairnn/internal/core"
	"fairnn/internal/fault"
	"fairnn/internal/obs"
	"fairnn/internal/rng"
	"fairnn/internal/wire"
)

// This file is the client half of the multi-node serving layer: a
// Backend implementation that runs each per-shard operation over one
// wire connection to a fairnn-server process. Everything above the
// Backend seam — the union draw, the single per-query RNG stream, the
// deadline/retry/backoff envelope, degraded mode, the health registry,
// fault injection — applies to remote shards verbatim, which is the
// payoff PR 6 bought by routing every per-shard op through the seam.
//
// Determinism over the wire: arming mirrors (ŝ, k0) into a client-side
// plan whose ResetDraw/Segments/Halve arithmetic is pure; the segment
// request carries the client's current k; and the pick request carries
// an index drawn from the query stream on the client (spending exactly
// the Intn draw the in-process Pick spends). The server holds no
// randomness, so a fault-free same-seed query stream is bit-identical
// to the in-process sampler over the same build.

// ShardSeed derives shard j's structure seed from the global build seed
// — the same derivation BuildConfig uses, exported so an out-of-process
// shard build (cmd/fairnn-server) constructs bit-identical structures.
func ShardSeed(seed uint64, j int) uint64 { return seed + uint64(j)*0x9e3779b97f4a7c15 }

// remotePlan is the client-side handle of a server-armed plan: the
// connection, the plan id, and the size of the last segment report
// (needed to draw the pick index locally).
type remotePlan struct {
	c     *wire.Client
	id    uint64
	lastN int
}

// Release implements core.ShardPlanExternal: one-way notify, best
// effort — if the connection is gone the server's connection teardown
// has already reclaimed the plan.
func (rp *remotePlan) Release() { _ = wire.ReleaseNotify(rp.c, rp.id) }

// remoteBackend runs the Backend ops against one fairnn-server.
type remoteBackend[P any] struct {
	c     *wire.Client
	codec wire.PointCodec[P]
	shard int
	n     int
}

// Arm implements Backend over the wire: a new plan id is armed on the
// server and the reported (ŝ, k0) are mirrored into p.
func (b *remoteBackend[P]) Arm(ctx context.Context, p *core.ShardPlan[P], q P, st *core.QueryStats) error {
	id := b.c.NextPlanID()
	resp, err := wire.ArmCall(ctx, b.c, b.codec, id, q)
	if err != nil {
		// The server may have armed the plan after this client gave up
		// (deadline races the response): release it best-effort, but only
		// when the connection survived — a dead connection reclaims all
		// its plans on its own.
		var re *wire.RemoteError
		if errors.As(err, &re) {
			_ = wire.ReleaseNotify(b.c, id)
		}
		return mapRemoteErr(err)
	}
	p.ArmExternal(&remotePlan{c: b.c, id: id}, resp.Est, resp.K0)
	applyDelta(st, resp.Stats)
	return nil
}

// SegmentNear implements Backend over the wire: the request carries the
// plan's current (h, k) so the server computes the same segment bounds
// the in-process plan would; the report's ids stay on the server and
// only the count returns.
func (b *remoteBackend[P]) SegmentNear(ctx context.Context, p *core.ShardPlan[P], h int, st *core.QueryStats) (int, error) {
	rp, ok := p.External().(*remotePlan)
	if !ok {
		return 0, fmt.Errorf("shard %d: segment on an unarmed remote plan", b.shard)
	}
	resp, err := wire.SegmentCall(ctx, b.c, rp.id, h, p.Segments())
	if err != nil {
		return 0, mapRemoteErr(err)
	}
	rp.lastN = resp.Count
	applyDelta(st, resp.Stats)
	return resp.Count, nil
}

// Pick implements Backend over the wire. The index into the last
// segment report is drawn from r on the client — the same single Intn
// draw the in-process Pick performs, in the same stream position — and
// the server only dereferences it.
func (b *remoteBackend[P]) Pick(ctx context.Context, p *core.ShardPlan[P], r *rng.Source) (int32, error) {
	rp, ok := p.External().(*remotePlan)
	if !ok || rp.lastN <= 0 {
		return 0, fmt.Errorf("shard %d: pick without a positive segment report", b.shard)
	}
	idx := r.Intn(rp.lastN)
	id, err := wire.PickCall(ctx, b.c, rp.id, idx)
	if err != nil {
		return 0, mapRemoteErr(err)
	}
	return id, nil
}

// N implements Backend from the handshake's shard point count.
func (b *remoteBackend[P]) N() int { return b.n }

// RetainedScratchBytes implements Backend: the scratch lives on the
// server, so the client-side answer is zero.
func (b *remoteBackend[P]) RetainedScratchBytes() int { return 0 }

// Close tears down the shard's connection.
func (b *remoteBackend[P]) Close() error { return b.c.Close() }

// mapRemoteErr maps wire-level failures onto the shard layer's error
// vocabulary: a draining server is indistinguishable from a down shard
// (the health registry should skip it and probe later), everything else
// passes through for the retry envelope to judge.
func mapRemoteErr(err error) error {
	var re *wire.RemoteError
	if errors.As(err, &re) && re.Code == wire.CodeDraining {
		return fmt.Errorf("%w: %v", ErrShardDown, err)
	}
	return err
}

// applyDelta folds a wire stats delta into the query's stats record.
func applyDelta(st *core.QueryStats, d wire.StatDelta) {
	if st == nil {
		return
	}
	st.BucketsScanned += int(d.Buckets)
	st.PointsInspected += int(d.Points)
	st.ScoreEvals += int(d.ScoreEvals)
	st.BatchScored += int(d.BatchScored)
	st.ScoreCacheHits += int(d.CacheHits)
	st.MemoProbes += int(d.MemoProbes)
	st.FilterEvals += int(d.FilterEvals)
	st.CursorMerged = st.CursorMerged || d.CursorMerged
}

// RemoteConfig collects the knobs of a network-connected sampler. The
// zero value of every field is valid: RoundRobin partitioning, the
// default resilience policy, no injector, unbounded dial.
type RemoteConfig struct {
	// Partitioner must name the same scheme the server fleet was built
	// with — the client rebuilds the local→global id translation from it
	// (points never cross the wire). nil defaults to RoundRobin.
	Partitioner Partitioner
	// Resilience is the per-shard-call fault-tolerance policy. Unlike
	// the in-process sampler, a remote sampler ALWAYS runs the resilient
	// call path (sockets fail; errors must be observed), so the zero
	// value here means "resilient path with default knobs", not "plain
	// path".
	Resilience Resilience
	// Injector, when non-nil, interposes the fault-injection harness on
	// every remote call with the same per-(shard, op, ordinal)
	// determinism as in-process (tests only).
	Injector *fault.Injector
	// DialTimeout bounds each connection attempt and handshake
	// (including lazy redials after a connection death); 0 means no
	// bound.
	DialTimeout time.Duration
	// Obs, when non-nil, registers the shard-layer telemetry bundle plus
	// each connection's wire-client instruments (per-op round-trip
	// latency, redials) and records into them. A nil registry is
	// contractually invisible.
	Obs *obs.Registry
	// TraceEveryN, with Obs set, samples roughly one query in N into the
	// registry's tracer; 0 disables tracing.
	TraceEveryN int
}

// Connect dials one fairnn-server per address and assembles a Sharded
// sampler over the fleet. Address order defines shard order: addrs[j]
// must serve shard j of a len(addrs)-shard build, and every server must
// report the same global point count, λ, Σ, and radius — the handshake
// metadata is cross-checked so a mis-assembled or mixed-build fleet
// fails here, loudly, instead of sampling from a subtly wrong
// distribution. The per-shard point counts implied by cfg.Partitioner
// are checked against each server's, because the client's local→global
// id translation is rebuilt from the partitioner alone.
//
// The returned sampler must be Closed when done.
func Connect[P any](codec wire.PointCodec[P], addrs []string, cfg RemoteConfig) (*Sharded[P], error) {
	shards := len(addrs)
	if shards < 1 {
		return nil, errors.New("shard: no server addresses")
	}
	if cfg.Injector != nil && cfg.Injector.Shards() != shards {
		return nil, fmt.Errorf("shard: fault injector built for %d shards, fleet has %d", cfg.Injector.Shards(), shards)
	}
	part := cfg.Partitioner
	if part == nil {
		part = RoundRobin{}
	}

	clients := make([]*wire.Client, 0, shards)
	fail := func(err error) (*Sharded[P], error) {
		for _, c := range clients {
			c.Close()
		}
		return nil, err
	}
	for j, addr := range addrs {
		c, err := wire.Dial(addr, codec.Name(), cfg.DialTimeout)
		if err != nil {
			return fail(fmt.Errorf("shard %d: %w", j, err))
		}
		clients = append(clients, c)
		m := c.Meta()
		if m.ShardIndex != j || m.ShardCount != shards {
			return fail(fmt.Errorf("shard: server %s identifies as shard %d of %d, connected as shard %d of %d", addr, m.ShardIndex, m.ShardCount, j, shards))
		}
	}
	m0 := clients[0].Meta()
	if m0.GlobalN < 1 {
		return fail(fmt.Errorf("shard: server %s reports global point count %d", addrs[0], m0.GlobalN))
	}
	for j, c := range clients {
		m := c.Meta()
		if m.GlobalN != m0.GlobalN || m.Lambda != m0.Lambda || m.Sigma != m0.Sigma || m.Radius != m0.Radius {
			return fail(fmt.Errorf("shard: fleet build mismatch: shard %d has (n=%d λ=%g Σ=%d r=%g), shard 0 has (n=%d λ=%g Σ=%d r=%g)",
				j, m.GlobalN, m.Lambda, m.Sigma, m.Radius, m0.GlobalN, m0.Lambda, m0.Sigma, m0.Radius))
		}
	}

	// Rebuild the local→global translation from the partitioner and
	// cross-check the implied shard sizes against the servers'.
	n := m0.GlobalN
	toGlobal := make([][]int32, shards)
	for i := 0; i < n; i++ {
		j := part.Assign(i, n, shards)
		if j < 0 || j >= shards {
			return fail(fmt.Errorf("shard: partitioner %q assigned point %d to shard %d of %d", part.Name(), i, j, shards))
		}
		toGlobal[j] = append(toGlobal[j], int32(i))
	}
	for j, c := range clients {
		if got, want := c.Meta().ShardN, len(toGlobal[j]); got != want {
			return fail(fmt.Errorf("shard: server %s holds %d points, partitioner %q implies %d for shard %d — wrong partitioner or wrong fleet", addrs[j], got, part.Name(), want, j))
		}
	}

	s := &Sharded[P]{
		toGlobal:   toGlobal,
		lambda:     m0.Lambda,
		sigma:      m0.Sigma,
		partName:   part.Name(),
		size:       n,
		floorGrace: bits.Len(uint(shards - 1)),
		res:        cfg.Resilience.withDefaults(),
		// Remote calls can always fail, so the resilient path — the only
		// one that observes backend errors — is mandatory over the wire.
		resOn: true,
		inj:   cfg.Injector,
		qseed: m0.QueryStreamSeed,
	}
	s.health = newHealthRegistry(shards, s.res.ProbeEvery)
	s.met = newShardMetrics(cfg.Obs, shards)
	if cfg.TraceEveryN > 0 {
		s.trc = cfg.Obs.EnableTracing(cfg.TraceEveryN, traceRingCapacity)
	}
	s.backends = make([]Backend[P], shards)
	for j := range s.backends {
		clients[j].Observe(cfg.Obs)
		var b Backend[P] = &remoteBackend[P]{c: clients[j], codec: codec, shard: j, n: clients[j].Meta().ShardN}
		if cfg.Injector != nil {
			b = &faultBackend[P]{next: b, inj: cfg.Injector, shard: j}
		}
		s.backends[j] = b
	}
	s.pool.SetCap(core.MemoOptions{}.Resolved().MaxRetainedQueriers)
	return s, nil
}

// Close releases the sampler's long-lived external resources — the
// per-shard connections of a network-connected sampler. On an
// in-process sampler it is a no-op. Safe to call more than once;
// queries issued after Close fail as shard-down.
func (s *Sharded[P]) Close() error {
	for _, b := range s.backends {
		if c, ok := b.(io.Closer); ok {
			_ = c.Close()
		}
	}
	return nil
}

// Close forwards to the decorated backend so a fault-injected remote
// sampler still tears its connections down.
func (b *faultBackend[P]) Close() error {
	if c, ok := b.next.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// HealthRecords converts the sampler's health snapshot into its wire
// image, for serving over a HealthServer operator endpoint.
func HealthRecords[P any](s *Sharded[P]) []wire.HealthRecord {
	hs := s.Health()
	out := make([]wire.HealthRecord, len(hs))
	for i, h := range hs {
		out[i] = wire.HealthRecord{
			Shard:        h.Shard,
			Healthy:      h.Healthy,
			Failures:     h.Failures,
			Skipped:      h.Skipped,
			Probes:       h.Probes,
			Readmissions: h.Readmissions,
		}
	}
	return out
}
