package shard

import (
	"context"
	"time"

	"fairnn/internal/core"
	"fairnn/internal/obs"
	"fairnn/internal/rng"
)

// Resilience is the per-shard-call fault-tolerance policy of a sharded
// sampler. The zero value disables everything: per-shard calls are
// direct, unlimited, and un-retried — the exact pre-resilience query
// path, preserving the zero-allocation and bit-identical-stream
// contracts. Any non-zero field (or a configured fault injector) routes
// queries through the resilient path instead.
//
// Deadlines bound waiting, not compute: a per-attempt deadline unblocks
// calls that wait on ctx.Done — injected stalls/latency today, network
// I/O in the RPC backend — while in-process segment counting is bounded
// by the draw loop's own cancellation polling. Retries use capped
// exponential backoff with full jitter; the jitter randomness comes from
// a per-(query, shard, op) substream derived from the query's stream
// seed — NOT from the query's main RNG stream, which must stay untouched
// on fault-free rounds so same-seed sample streams remain bit-identical
// with an idle injector, and which parallel-armed shards must not race
// on.
type Resilience struct {
	// Deadline bounds each individual attempt of each per-shard call;
	// 0 means no deadline.
	Deadline time.Duration
	// Retries is the number of extra attempts after the first failure of
	// a per-shard call; 0 means fail on the first error.
	Retries int
	// BackoffBase is the cap of the first retry's jittered sleep
	// (defaults to 1ms when Retries > 0); attempt i sleeps a uniform
	// duration in (0, min(BackoffBase<<i, BackoffMax)].
	BackoffBase time.Duration
	// BackoffMax caps the backoff growth (defaults to 50ms).
	BackoffMax time.Duration
	// Degraded, when set, answers queries from the surviving shards when
	// one or more shards exhaust their budget: the lost shards leave the
	// union pool and every accepted draw is exactly uniform over the
	// survivors' union ball, with the loss reported on
	// QueryStats.Degraded. When unset, the first exhausted shard fails
	// the query with a typed *ShardError.
	Degraded bool
	// ProbeEvery is the re-admission cadence of the health registry: an
	// unhealthy shard is actually called on every ProbeEvery-th query
	// that would otherwise skip it (defaults to 8).
	ProbeEvery int
}

// enabled reports whether any policy field routes queries through the
// resilient path.
func (r Resilience) enabled() bool {
	return r.Deadline > 0 || r.Retries > 0 || r.Degraded
}

// withDefaults resolves zero fields to their documented defaults.
func (r Resilience) withDefaults() Resilience {
	if r.BackoffBase <= 0 {
		r.BackoffBase = time.Millisecond
	}
	if r.BackoffMax <= 0 {
		r.BackoffMax = 50 * time.Millisecond
	}
	if r.ProbeEvery <= 0 {
		r.ProbeEvery = 8
	}
	return r
}

// Op salts separate the backoff-jitter substreams of the three backend
// operations of one (query, shard) pair.
const (
	saltArm     = 0xa12f
	saltSegment = 0x5e67
	saltPick    = 0x91c4
)

// safeCall invokes fn and converts a panic — an injected PanicRate
// fault, or a poisoned point reaching a user Space/Family callback —
// into an ordinary *core.PanicError with the stack captured, so one bad
// shard call is a retriable failure instead of a process crash.
//
//fairnn:noalloc
//fairnn:fanout-safe converts panics into retriable *core.PanicError returns
func safeCall(ctx context.Context, fn func(context.Context) error) (err error) {
	//fairnn:allocok deferred recover closure captures only err; open-coded by the compiler
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(*core.PanicError)
			if !ok {
				pe = core.NewPanicError(r)
			}
			err = pe
		}
	}()
	return fn(ctx)
}

// backoffDelay is the attempt-i sleep: uniform in (0, cap] where cap is
// the exponentially grown base clamped to max (full jitter, so
// concurrent retries against one struggling shard spread out instead of
// synchronizing).
//
//fairnn:noalloc
func backoffDelay(r *rng.Source, base, max time.Duration, attempt int) time.Duration {
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d <<= 1
	}
	if d > max {
		d = max
	}
	if d <= 0 {
		return 0
	}
	return time.Duration(r.Intn(int(d))) + 1
}

// sleepCtx sleeps d or returns early with ctx.Err() on cancellation.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// callShard runs one backend operation for shard j under the resilience
// policy: health-registry gate, per-attempt deadline, bounded retries
// with jittered backoff, panic containment, and unhealthy-marking on
// budget exhaustion. A nil return means the operation succeeded on some
// attempt; any error is a *ShardError carrying the final cause. Parent
// cancellation is surfaced immediately and does NOT mark the shard
// unhealthy — an impatient caller is not evidence against the shard.
//
// Telemetry: the whole call (retries and backoff included) lands in the
// per-(shard, op) latency histogram, retries and backoff sleeps in
// their counters, and sp — the traced query's span for this op, nil for
// the untraced 1-in-N complement — collects retry and fail-fast
// annotations. All of it is observational: no randomness, no
// allocations, no-op without a registry.
//
//fairnn:noalloc
func (s *Sharded[P]) callShard(ctx context.Context, ses *session[P], j int, op string, opIdx int, opSalt uint64, sp *obs.Span, fn func(context.Context) error) error {
	m := s.met
	var t0 time.Time
	if m != nil {
		t0 = time.Now()
	}
	if !s.health.allow(j) {
		m.opFailed(j, opIdx, time.Since(t0))
		if sp != nil {
			sp.Note("health gate: shard down, failing fast")
		}
		return &ShardError{Shard: j, Op: op, Err: ErrShardDown} //fairnn:allocok cold failure path: shard already marked down
	}
	var br rng.Source
	brSeeded := false
	var lastErr error
	for attempt := 0; ; attempt++ {
		actx, cancel := ctx, context.CancelFunc(nil)
		if s.res.Deadline > 0 {
			actx, cancel = context.WithTimeout(ctx, s.res.Deadline)
		}
		err := safeCall(actx, fn)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			m.opOK(j, opIdx, time.Since(t0))
			return nil
		}
		lastErr = err
		if ctx.Err() != nil {
			m.opFailed(j, opIdx, time.Since(t0))
			return &ShardError{Shard: j, Op: op, Err: ctx.Err()}
		}
		if attempt >= s.res.Retries {
			break
		}
		m.retried(j, opIdx)
		if sp != nil {
			sp.Retry()
		}
		if !brSeeded {
			br.Seed(rng.Mix64(ses.boSeed ^ uint64(j)<<20 ^ opSalt))
			brSeeded = true
		}
		if d := backoffDelay(&br, s.res.BackoffBase, s.res.BackoffMax, attempt); d > 0 {
			m.backoff(d)
			if sleepCtx(ctx, d) != nil {
				m.opFailed(j, opIdx, time.Since(t0))
				return &ShardError{Shard: j, Op: op, Err: ctx.Err()}
			}
		}
	}
	s.health.fail(j)
	s.met.wentDown()
	m.opFailed(j, opIdx, time.Since(t0))
	return &ShardError{Shard: j, Op: op, Err: lastErr} //fairnn:allocok cold failure path: retries exhausted
}
