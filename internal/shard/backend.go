package shard

import (
	"context"

	"fairnn/internal/core"
	"fairnn/internal/fault"
	"fairnn/internal/rng"
)

// Backend is the per-shard failure-domain seam: every operation one
// logical sharded query performs against one shard — arming the plan
// (resolve + estimate), the per-round segment report, the post-accept
// point pick — crosses this interface and nothing else. The in-process
// backend below wraps today's per-shard Section 4 structure; the RPC
// backend of the multi-node serving layer lands later against the same
// interface, inheriting the deadline/retry/degradation machinery in
// sharded.go verbatim.
//
// The contract mirrors a remote call's: operations accept a context and
// may fail. ctx bounds *waiting* (injected faults and future network
// I/O select on ctx.Done); in-process compute is synchronous and is
// instead bounded by the draw loop's own cancellation polling. A nil
// error from Arm means the plan is armed and must eventually be released
// (Close/Abort); any error means the plan must be treated as unarmed.
//
// Backends are constructed once at build time, so the interface values
// held by Sharded cost no per-query allocation — the zero-alloc
// steady-state contract survives the seam.
type Backend[P any] interface {
	// Arm resolves q against the shard and arms p for segment draws
	// (core.Independent.BeginShardPlan behind the seam).
	Arm(ctx context.Context, p *core.ShardPlan[P], q P, st *core.QueryStats) error
	// SegmentNear reports the exact number of distinct near points in
	// segment h of the armed plan's current pool, retaining the ids for
	// Pick.
	SegmentNear(ctx context.Context, p *core.ShardPlan[P], h int, st *core.QueryStats) (int, error)
	// Pick draws a uniform shard-local near id from the last SegmentNear
	// report, spending randomness from r.
	Pick(ctx context.Context, p *core.ShardPlan[P], r *rng.Source) (int32, error)
	// N returns the shard's indexed point count.
	N() int
	// RetainedScratchBytes reports the pooled scratch the shard pins
	// between queries.
	RetainedScratchBytes() int
}

// inProc is the in-process backend: a direct pass-through to the shard's
// Section 4 structure. It never returns an error on its own — failures
// in this process are panics, which the resilience layer converts to
// errors at the call boundary.
type inProc[P any] struct{ d *core.Independent[P] }

func (b *inProc[P]) Arm(_ context.Context, p *core.ShardPlan[P], q P, st *core.QueryStats) error {
	b.d.BeginShardPlan(p, q, st)
	return nil
}

func (b *inProc[P]) SegmentNear(_ context.Context, p *core.ShardPlan[P], h int, st *core.QueryStats) (int, error) {
	return p.SegmentNear(h, st), nil
}

func (b *inProc[P]) Pick(_ context.Context, p *core.ShardPlan[P], r *rng.Source) (int32, error) {
	return p.Pick(r), nil
}

func (b *inProc[P]) N() int { return b.d.N() }

func (b *inProc[P]) RetainedScratchBytes() int { return b.d.RetainedScratchBytes() }

// faultBackend decorates a backend with the fault injector: every
// operation consults the injector before delegating, so injected
// latency, errors, stalls, and panics hit exactly the surface a flaky
// remote shard would. It is only interposed when an injector is
// configured — a production sampler never pays for it.
type faultBackend[P any] struct {
	next  Backend[P]
	inj   *fault.Injector
	shard int
}

func (b *faultBackend[P]) Arm(ctx context.Context, p *core.ShardPlan[P], q P, st *core.QueryStats) error {
	if err := b.inj.Before(ctx, b.shard, fault.OpArm); err != nil {
		return err
	}
	return b.next.Arm(ctx, p, q, st)
}

func (b *faultBackend[P]) SegmentNear(ctx context.Context, p *core.ShardPlan[P], h int, st *core.QueryStats) (int, error) {
	if err := b.inj.Before(ctx, b.shard, fault.OpSegment); err != nil {
		return 0, err
	}
	return b.next.SegmentNear(ctx, p, h, st)
}

func (b *faultBackend[P]) Pick(ctx context.Context, p *core.ShardPlan[P], r *rng.Source) (int32, error) {
	if err := b.inj.Before(ctx, b.shard, fault.OpPick); err != nil {
		return 0, err
	}
	return b.next.Pick(ctx, p, r)
}

func (b *faultBackend[P]) N() int { return b.next.N() }

func (b *faultBackend[P]) RetainedScratchBytes() int { return b.next.RetainedScratchBytes() }
