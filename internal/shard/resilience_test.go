package shard

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"fairnn/internal/core"
	"fairnn/internal/fault"
	"fairnn/internal/lsh"
	"fairnn/internal/rng"
	"fairnn/internal/stats"
)

// buildLineCfg is buildLine with the full Config surface (resilience
// policy, fault injector).
func buildLineCfg(t *testing.T, n int, radius float64, cfg Config) *Sharded[int] {
	t.Helper()
	s, err := BuildConfig[int](intSpace(), allCollide{}, constParams(lsh.Params{K: 1, L: 1}), lineDataset(n), radius, core.IndependentOptions{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// killShardSpec makes every backend call against shard j fail instantly.
func killShardSpec(j int) fault.Spec {
	return fault.Spec{Shards: []int{j}, ErrRate: fault.Always}
}

// survivorBall lists the ball points [0, ballSize) NOT owned by the dead
// shard under part — the population a degraded draw must be uniform
// over.
func survivorBall(part Partitioner, n, shards, ballSize, dead int) []int32 {
	var out []int32
	for i := 0; i < ballSize; i++ {
		if part.Assign(i, n, shards) != dead {
			out = append(out, int32(i))
		}
	}
	return out
}

// TestDegradedUniformOverSurvivors is the degraded-mode acceptance gate:
// for S ∈ {2, 4, 8}, each shard killed in turn (plus the adversarially
// unbalanced range partition), the output stream must be exactly uniform
// over the *surviving* shards' union ball — seeded chi-squared must not
// reject, TV must sit near the noise floor, and no dead-shard point may
// ever appear. DegradedInfo must name the lost shard with a sane
// coverage fraction.
func TestDegradedUniformOverSurvivors(t *testing.T) {
	const ballSize = 16
	const n = 256
	const reps = 8000
	type pcase struct {
		name string
		mk   func(S int) Partitioner
		kill func(S int) []int
	}
	cases := []pcase{
		{"round-robin", func(int) Partitioner { return RoundRobin{} }, func(S int) []int {
			all := make([]int, S)
			for j := range all {
				all[j] = j
			}
			return all
		}},
		// The unbalanced partition: shard 0 owns ball points {0..7}
		// outright, the rest stripe over shards 1+. Killing shard 0 wipes
		// half the ball; killing shard 1 takes an uneven bite.
		{"range", func(int) Partitioner { return rangePart{cut: 8} }, func(int) []int { return []int{0, 1} }},
	}
	for _, pc := range cases {
		for _, S := range []int{2, 4, 8} {
			for _, dead := range pc.kill(S) {
				t.Run(fmt.Sprintf("%s/S=%d/kill=%d", pc.name, S, dead), func(t *testing.T) {
					part := pc.mk(S)
					domain := survivorBall(part, n, S, ballSize, dead)
					if len(domain) == 0 {
						t.Skip("dead shard owns the whole ball")
					}
					inj := fault.New(S, 7, killShardSpec(dead))
					s := buildLineCfg(t, n, ballSize-1, Config{
						Shards:      S,
						Partitioner: part,
						Seed:        500 + uint64(S),
						Resilience:  Resilience{Degraded: true},
						Injector:    inj,
					})
					alive := map[int32]bool{}
					for _, id := range domain {
						alive[id] = true
					}
					freq := stats.NewFrequency()
					var st core.QueryStats
					for i := 0; i < reps; i++ {
						id, err := s.SampleContext(context.Background(), 0, &st)
						if err != nil {
							t.Fatalf("degraded query failed: %v", err)
						}
						if !alive[id] {
							t.Fatalf("sample %d came from the dead shard %d", id, dead)
						}
						if !st.Degraded.Degraded() {
							t.Fatal("QueryStats.Degraded not set on a degraded query")
						}
						freq.Observe(id)
					}
					if got := st.Degraded.LostShards; len(got) != 1 || got[0] != dead {
						t.Errorf("LostShards = %v, want [%d]", got, dead)
					}
					if st.Degraded.LostPoints != s.ShardSizes()[dead] {
						t.Errorf("LostPoints = %d, want %d", st.Degraded.LostPoints, s.ShardSizes()[dead])
					}
					if c := st.Degraded.Coverage; c <= 0 || c > 1 {
						t.Errorf("Coverage = %v outside (0, 1]", c)
					}
					if tv := freq.TVFromUniform(domain); tv > 0.03 {
						t.Errorf("TV over survivors = %v, want < 0.03", tv)
					}
					if _, p := freq.ChiSquareUniform(domain); p < 1e-4 {
						t.Errorf("chi-square rejects uniformity over survivors: p = %v", p)
					}
				})
			}
		}
	}
}

// TestIdleInjectorBitEquivalence pins the contract that the resilient
// path is invisible when nothing fires: a sampler with deadlines,
// retries, degraded mode AND a configured-but-idle injector must produce
// bit-identical same-seed sample streams to the plain sampler — single
// draws, bulk draws, and stats alike.
func TestIdleInjectorBitEquivalence(t *testing.T) {
	const n = 192
	const S = 4
	plain := buildLine(t, n, 15, S, RoundRobin{}, 909)
	idle := buildLineCfg(t, n, 15, Config{
		Shards: S,
		Seed:   909,
		Resilience: Resilience{
			Deadline: 100 * time.Millisecond,
			Retries:  3,
			Degraded: true,
		},
		Injector: fault.New(S, 42, fault.Spec{}), // no rates: idle
	})
	if !idle.ResiliencePolicy().Degraded {
		t.Fatal("resilience policy not carried into the sampler")
	}
	var stA, stB core.QueryStats
	for i := 0; i < 400; i++ {
		a, okA := plain.Sample(7, &stA)
		b, okB := idle.Sample(7, &stB)
		if a != b || okA != okB {
			t.Fatalf("draw %d diverged: plain (%d, %v) vs idle-injected (%d, %v)", i, a, okA, b, okB)
		}
		if stB.Degraded.Degraded() {
			t.Fatal("idle injector produced a degraded query")
		}
	}
	ka := plain.SampleK(7, 128, nil)
	kb := idle.SampleK(7, 128, nil)
	if len(ka) != len(kb) {
		t.Fatalf("bulk draw lengths diverged: %d vs %d", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("bulk draw %d diverged: %d vs %d", i, ka[i], kb[i])
		}
	}
	for _, h := range idle.Health() {
		if !h.Healthy || h.Failures != 0 {
			t.Errorf("shard %d health touched by idle injector: %+v", h.Shard, h)
		}
	}
}

// TestFailFastTypedError pins the degradation-off contract: a shard that
// exhausts its budget fails the query immediately with a *ShardError
// naming the shard and operation, matching both ErrDegraded and the
// injected cause — and the rejection never hangs the caller.
func TestFailFastTypedError(t *testing.T) {
	const S = 3
	inj := fault.New(S, 11, fault.Spec{Shards: []int{1}, Ops: []fault.Op{fault.OpArm}, ErrRate: fault.Always})
	s := buildLineCfg(t, 90, 9, Config{
		Shards:     S,
		Seed:       31,
		Resilience: Resilience{Retries: 1},
		Injector:   inj,
	})
	_, err := s.SampleContext(context.Background(), 0, nil)
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *ShardError", err)
	}
	if se.Shard != 1 || se.Op != "arm" {
		t.Errorf("ShardError = {Shard: %d, Op: %q}, want shard 1 op arm", se.Shard, se.Op)
	}
	if !errors.Is(err, ErrDegraded) {
		t.Error("ShardError does not match ErrDegraded")
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Errorf("cause chain lost the injected error: %v", err)
	}
	if _, ok := s.Sample(0, nil); ok {
		t.Error("Sample reported ok on a failed shard without degraded mode")
	}
	// The retry budget was spent: first arm call + 1 retry = 2 injector
	// calls on shard 1 for the first query.
	if got := inj.Calls(1, fault.OpArm); got < 2 {
		t.Errorf("injector saw %d arm calls on shard 1, want ≥ 2 (retry budget)", got)
	}
}

// TestStallWithinDeadline pins the anti-hang contract: a shard stalled
// on every operation blocks only until its per-attempt deadline, and in
// degraded mode the query still answers from the survivors — promptly,
// and without leaking goroutines.
func TestStallWithinDeadline(t *testing.T) {
	const S = 4
	baseline := runtime.NumGoroutine()
	inj := fault.New(S, 13, fault.Spec{Shards: []int{2}, StallRate: fault.Always})
	s := buildLineCfg(t, 128, 15, Config{
		Shards: S,
		Seed:   77,
		Resilience: Resilience{
			Deadline: 25 * time.Millisecond,
			Degraded: true,
		},
		Injector: inj,
	})
	start := time.Now()
	var st core.QueryStats
	id, err := s.SampleContext(context.Background(), 0, &st)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("degraded query failed under stall: %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("query took %v — the stall was not bounded by the deadline", elapsed)
	}
	if !st.Degraded.Degraded() || len(st.Degraded.LostShards) != 1 || st.Degraded.LostShards[0] != 2 {
		t.Errorf("Degraded = %+v, want shard 2 lost", st.Degraded)
	}
	if (RoundRobin{}).Assign(int(id), 128, S) == 2 {
		t.Errorf("sample %d belongs to the stalled shard", id)
	}
	// More queries: the health registry should now fail fast (skip the
	// stalled shard) instead of re-paying the deadline every time.
	start = time.Now()
	for i := 0; i < 20; i++ {
		if _, err := s.SampleContext(context.Background(), 0, nil); err != nil {
			t.Fatalf("query %d failed: %v", i, err)
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("20 follow-up queries took %v — fail-fast gate not engaged", elapsed)
	}
	h := s.Health()[2]
	if h.Healthy || h.Failures == 0 || h.Skipped == 0 {
		t.Errorf("stalled shard health = %+v, want unhealthy with skips", h)
	}
	waitForGoroutines(t, baseline)
}

// waitForGoroutines polls until the goroutine count settles back to the
// baseline (small slack for runtime housekeeping) — the leak check.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d live, baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPanicInjectionContained pins panic containment on the query path:
// a shard panicking on its segment reports mid-draw must not crash the
// process — in degraded mode the draw continues over the survivors, and
// the recovered panic (with stack) is retrievable from the health-driven
// failure accounting.
func TestPanicInjectionContained(t *testing.T) {
	const S = 2
	inj := fault.New(S, 17, fault.Spec{Shards: []int{1}, Ops: []fault.Op{fault.OpSegment}, PanicRate: fault.Always})
	s := buildLineCfg(t, 64, 7, Config{
		Shards:     S,
		Seed:       55,
		Resilience: Resilience{Degraded: true},
		Injector:   inj,
	})
	var st core.QueryStats
	for i := 0; i < 50; i++ {
		id, err := s.SampleContext(context.Background(), 0, &st)
		if err != nil {
			t.Fatalf("query %d failed: %v", i, err)
		}
		if int(id)%S == 1 {
			t.Fatalf("sample %d came from the panicking shard", id)
		}
	}
	if h := s.Health()[1]; h.Healthy || h.Failures == 0 {
		t.Errorf("panicking shard health = %+v, want unhealthy", h)
	}
	// Degradation off: the contained panic surfaces as a typed error
	// wrapping *core.PanicError with the stack attached.
	s2 := buildLineCfg(t, 64, 7, Config{
		Shards:   S,
		Seed:     56,
		Injector: fault.New(S, 17, fault.Spec{Shards: []int{1}, Ops: []fault.Op{fault.OpSegment}, PanicRate: fault.Always}),
	})
	_, err := s2.SampleContext(context.Background(), 0, nil)
	var pe *core.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want a *core.PanicError in the chain", err)
	}
	if len(pe.Stack) == 0 {
		t.Error("recovered panic lost its stack")
	}
	if _, ok := pe.Recovered.(fault.PanicValue); !ok {
		t.Errorf("recovered value = %#v, want fault.PanicValue", pe.Recovered)
	}
}

// TestHealthProbeReadmission pins the heal path: a shard whose outage is
// bounded (Spec.Limit) is probed on the registry's cadence and
// re-admitted after its first successful arm — later queries answer at
// full strength again.
func TestHealthProbeReadmission(t *testing.T) {
	const S = 2
	// Shard 0's first 3 arm calls fail, then it heals.
	inj := fault.New(S, 23, fault.Spec{Shards: []int{0}, Ops: []fault.Op{fault.OpArm}, ErrRate: fault.Always, Limit: 3})
	s := buildLineCfg(t, 64, 7, Config{
		Shards: S,
		Seed:   88,
		Resilience: Resilience{
			Degraded:   true,
			ProbeEvery: 4,
		},
		Injector: inj,
	})
	var st core.QueryStats
	for i := 0; i < 60; i++ {
		if _, err := s.SampleContext(context.Background(), 0, &st); err != nil {
			t.Fatalf("query %d failed: %v", i, err)
		}
	}
	h := s.Health()[0]
	if !h.Healthy {
		t.Fatalf("shard 0 not re-admitted after its outage: %+v", h)
	}
	if h.Readmissions == 0 || h.Probes == 0 {
		t.Errorf("health = %+v, want probes and a re-admission", h)
	}
	if st.Degraded.Degraded() {
		t.Errorf("query after re-admission still degraded: %+v", st.Degraded)
	}
}

// TestDegradedAllShardsLost pins the exhaustion edge: when every shard
// is lost even degraded mode cannot answer, and the query fails with
// ErrDegraded instead of hanging or fabricating output.
func TestDegradedAllShardsLost(t *testing.T) {
	const S = 2
	inj := fault.New(S, 29, fault.Spec{Ops: []fault.Op{fault.OpArm}, ErrRate: fault.Always})
	s := buildLineCfg(t, 64, 7, Config{
		Shards:     S,
		Seed:       99,
		Resilience: Resilience{Degraded: true},
		Injector:   inj,
	})
	_, err := s.SampleContext(context.Background(), 0, nil)
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("err = %v, want ErrDegraded", err)
	}
}

// TestBuildPanicTypedError pins satellite coverage for the parallel
// build: a worker panic during construction surfaces as a typed
// *core.BuildError naming the shard (and point, when point-scoped) with
// the stack captured — not a process crash, not a wedged WaitGroup.
func TestBuildPanicTypedError(t *testing.T) {
	// paramsFor panicking for one shard: shard-scoped attribution.
	_, err := Build[int](intSpace(), allCollide{}, func(n int) lsh.Params {
		if n != 64 { // shards 1 and 2 under this split; shard 0 has 64
			panic("paramsFor poisoned")
		}
		return lsh.Params{K: 1, L: 1}
	}, lineDataset(96), 9, core.IndependentOptions{}, 3, rangePart{cut: 64}, 7)
	var be *core.BuildError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *core.BuildError", err)
	}
	if be.Shard < 0 {
		t.Errorf("BuildError did not name the shard: %+v", be)
	}
	var pe *core.PanicError
	if !errors.As(err, &pe) || len(pe.Stack) == 0 {
		t.Error("BuildError lost the panic stack")
	}

	// A poisoned point panicking inside the signature pass: point-scoped
	// attribution on the owning shard.
	_, err = Build[int](intSpace(), poisonFamily{bad: 42}, constParams(lsh.Params{K: 1, L: 1}), lineDataset(96), 9, core.IndependentOptions{}, 2, RoundRobin{}, 7)
	be = nil
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *core.BuildError", err)
	}
	if be.Shard != 42%2 {
		t.Errorf("BuildError.Shard = %d, want %d (owner of the poisoned point)", be.Shard, 42%2)
	}
	if be.Point < 0 {
		t.Errorf("BuildError did not name the point: %+v", be)
	}
}

// poisonFamily panics when hashing one specific point value — the
// "poisoned point" a user callback can always contain.
type poisonFamily struct{ bad int }

func (f poisonFamily) New(r *rng.Source) lsh.Func[int] {
	bad := f.bad
	return func(p int) uint64 {
		if p == bad {
			panic(fmt.Sprintf("poisoned point %d", p))
		}
		return 0
	}
}

func (poisonFamily) CollisionProb(float64) float64 { return 1 }

// TestFaultedConcurrentStress hammers a degraded sampler from many
// goroutines (run under -race in CI with GOMAXPROCS > 1): injected
// errors and stalls on one shard must never corrupt another query's
// draw, wedge a worker, or leak goroutines.
func TestFaultedConcurrentStress(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	baseline := runtime.NumGoroutine()
	const S = 4
	inj := fault.New(S, 31,
		fault.Spec{Shards: []int{3}, ErrRate: 0.5},
		fault.Spec{Shards: []int{1}, Ops: []fault.Op{fault.OpSegment}, StallRate: 0.05},
	)
	s := buildLineCfg(t, 128, 15, Config{
		Shards: S,
		Seed:   404,
		Resilience: Resilience{
			Deadline: 10 * time.Millisecond,
			Retries:  1,
			Degraded: true,
		},
		Injector: inj,
	})
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			var st core.QueryStats
			for i := 0; i < 150; i++ {
				id, err := s.SampleContext(context.Background(), 0, &st)
				if err != nil && !errors.Is(err, core.ErrNoSample) && !errors.Is(err, ErrDegraded) {
					done <- fmt.Errorf("worker %d query %d: unexpected error %v", w, i, err)
					return
				}
				if err == nil && (id < 0 || id > 15) {
					done <- fmt.Errorf("worker %d: far point %d", w, id)
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	waitForGoroutines(t, baseline)
}
