package shard

// The shard-sweep gauge behind scripts/bench.sh: it builds the sharded
// sampler at gauge scale for each shard count in the sweep and reports
// build time, single-draw latency and bulk-draw latency as
// machine-parseable SHARDSWEEP lines that the bench script folds into
// BENCH_PR5.json. It doubles as an end-to-end smoke for the sharded path
// at a realistic size.
//
// Knobs (env): FAIRNN_SHARD_N (indexed points, default 30000 so the
// regular test run stays light; bench.sh sets 1000000) and
// FAIRNN_SHARD_SWEEP (space-separated shard counts, default "1 2 4 8").

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"fairnn/internal/core"
	"fairnn/internal/lsh"
)

func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

func envInts(name string, def []int) []int {
	s := os.Getenv(name)
	if s == "" {
		return def
	}
	var out []int
	for _, f := range strings.Fields(s) {
		v, err := strconv.Atoi(f)
		if err != nil || v < 1 {
			return def
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return def
	}
	return out
}

// TestShardSweepGauge measures the sharded build and query path across
// the shard sweep at gauge scale. Every sweep point must answer queries
// correctly (near points only); the timing lines are for the bench
// snapshot, not assertions.
func TestShardSweepGauge(t *testing.T) {
	n := envInt("FAIRNN_SHARD_N", 30000)
	sweep := envInts("FAIRNN_SHARD_SWEEP", []int{1, 2, 4, 8})
	const radius = 40
	pts := lineDataset(n)
	for _, S := range sweep {
		start := time.Now()
		s, err := Build[int](intSpace(), chunkFamily{width: 64}, constParams(lsh.Params{K: 1, L: 4}), pts, radius, core.IndependentOptions{}, S, RoundRobin{}, 991)
		if err != nil {
			t.Fatal(err)
		}
		buildMS := float64(time.Since(start).Nanoseconds()) / 1e6

		const queries = 50
		start = time.Now()
		for i := 0; i < queries; i++ {
			q := (i * 997) % n
			id, ok := s.Sample(q, nil)
			if !ok {
				t.Fatalf("S=%d: Sample(%d) failed", S, q)
			}
			if d := int(id) - q; d > radius || d < -radius {
				t.Fatalf("S=%d: far point %d for query %d", S, id, q)
			}
		}
		sampleNS := float64(time.Since(start).Nanoseconds()) / queries

		dst := make([]int32, 0, 100)
		const bulk = 10
		start = time.Now()
		for i := 0; i < bulk; i++ {
			dst = s.SampleKInto((i*499)%n, 100, dst, nil)
			if len(dst) == 0 {
				t.Fatalf("S=%d: bulk draw found nothing", S)
			}
		}
		samplekNS := float64(time.Since(start).Nanoseconds()) / bulk

		fmt.Printf("SHARDSWEEP shards=%d n=%d build_ms=%.2f sample_ns=%.0f samplek100_ns=%.0f\n",
			S, n, buildMS, sampleNS, samplekNS)
	}
}
