package shard

import (
	"strconv"
	"time"

	"fairnn/internal/obs"
)

// Backend-operation indices for the per-(shard, op) instrument tables.
// They parallel the op salts in resilience.go: one name, one salt, one
// instrument row per seam operation.
const (
	opArm = iota
	opSegment
	opPick
	numOps
)

var opNames = [numOps]string{"arm", "segment", "pick"}

// traceRingCapacity is how many recent traces a sampler's tracer
// retains.
const traceRingCapacity = 32

// shardMetrics is the shard seam's instrument bundle: the layer="shard"
// draw-loop vocabulary plus per-(shard, op) backend-call latency and
// failure/retry counters, backoff accounting, and health-transition
// counters. A nil *shardMetrics (no registry configured) is a no-op
// recorder on every method — the disabled-telemetry contract — and the
// enabled record path is zero-alloc (all storage preallocated here).
type shardMetrics struct {
	draw *obs.QueryMetrics

	// opLat/opErr/opRetry are indexed [shard][op].
	opLat   [][numOps]*obs.Histogram
	opErr   [][numOps]*obs.Counter
	opRetry [][numOps]*obs.Counter

	backoffWaits *obs.Counter
	backoffNanos *obs.Counter
	shardLost    *obs.Counter
	healthDown   *obs.Counter
	healthReadm  *obs.Counter
}

// newShardMetrics registers the shard-layer bundle, preallocating every
// per-(shard, op) instrument so the record path never touches the
// registry. Returns nil on a nil registry.
func newShardMetrics(r *obs.Registry, shards int) *shardMetrics {
	if r == nil {
		return nil
	}
	m := &shardMetrics{
		draw:         obs.NewQueryMetrics(r, "shard"),
		opLat:        make([][numOps]*obs.Histogram, shards),
		opErr:        make([][numOps]*obs.Counter, shards),
		opRetry:      make([][numOps]*obs.Counter, shards),
		backoffWaits: r.Counter("fairnn_shard_backoff_waits_total", "", "jittered backoff sleeps taken between shard-call retries"),
		backoffNanos: r.Counter("fairnn_shard_backoff_nanos_total", "", "total nanoseconds slept in shard-call backoff"),
		shardLost:    r.Counter("fairnn_shard_lost_total", "", "shards dropped from the union pool mid-query (degraded mode)"),
		healthDown:   r.Counter("fairnn_shard_health_down_total", "", "health-registry transitions to unhealthy"),
		healthReadm:  r.Counter("fairnn_shard_health_readmit_total", "", "probe successes re-admitting an unhealthy shard"),
	}
	for j := 0; j < shards; j++ {
		js := strconv.Itoa(j)
		for op, name := range opNames {
			l := obs.Labels("shard", js, "op", name)
			m.opLat[j][op] = r.Histogram("fairnn_shard_op_latency_seconds", l, "backend seam operation latency (whole call, retries included)")
			m.opErr[j][op] = r.Counter("fairnn_shard_op_errors_total", l, "backend seam operations that exhausted their budget")
			m.opRetry[j][op] = r.Counter("fairnn_shard_op_retries_total", l, "backend seam operation retry attempts")
		}
	}
	return m
}

// opOK records a successful backend call's whole-call latency.
//
//fairnn:noalloc
func (m *shardMetrics) opOK(j, op int, d time.Duration) {
	if m == nil {
		return
	}
	m.opLat[j][op].Observe(d)
}

// opFailed records a backend call that exhausted its budget (its
// latency still lands in the histogram — slow failures are the
// interesting ones).
//
//fairnn:noalloc
func (m *shardMetrics) opFailed(j, op int, d time.Duration) {
	if m == nil {
		return
	}
	m.opLat[j][op].Observe(d)
	m.opErr[j][op].Inc()
}

// retried records one retry attempt of a backend call.
//
//fairnn:noalloc
func (m *shardMetrics) retried(j, op int) {
	if m == nil {
		return
	}
	m.opRetry[j][op].Inc()
}

// backoff records one jittered backoff sleep.
//
//fairnn:noalloc
func (m *shardMetrics) backoff(d time.Duration) {
	if m == nil {
		return
	}
	m.backoffWaits.Inc()
	m.backoffNanos.Add(uint64(d))
}

// lost records a shard leaving the union pool mid-query.
//
//fairnn:noalloc
func (m *shardMetrics) lost() {
	if m == nil {
		return
	}
	m.shardLost.Inc()
}

// wentDown records a health transition to unhealthy.
//
//fairnn:noalloc
func (m *shardMetrics) wentDown() {
	if m == nil {
		return
	}
	m.healthDown.Inc()
}

// readmitted records a probe success flipping a shard healthy.
//
//fairnn:noalloc
func (m *shardMetrics) readmitted() {
	if m == nil {
		return
	}
	m.healthReadm.Inc()
}
