package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
	"testing"

	"fairnn/internal/core"
	"fairnn/internal/lsh"
	"fairnn/internal/rng"
	"fairnn/internal/stats"
)

// Test fixtures mirror internal/core's: a 1-D integer line under absolute
// distance isolates the sharded draw logic from LSH recall effects.

func intSpace() core.Space[int] {
	return core.Space[int]{Kind: core.Distance, Score: func(a, b int) float64 {
		return math.Abs(float64(a - b))
	}}
}

// allCollide puts every point in one bucket: perfect recall, so the
// uniformity tests measure the sharded draw, not LSH loss.
type allCollide struct{}

func (allCollide) New(r *rng.Source) lsh.Func[int] { return func(int) uint64 { return 0 } }

func (allCollide) CollisionProb(float64) float64 { return 1 }

// modFamily hashes ints by a per-function random modulus, giving every
// shard a multi-bucket profile (rejection loop, merged cursor and memo
// all do real work).
type modFamily struct{}

func (modFamily) New(r *rng.Source) lsh.Func[int] {
	m := uint64(r.Intn(7) + 3)
	return func(p int) uint64 { return uint64(p) % m }
}

func (modFamily) CollisionProb(float64) float64 { return 0.5 }

// chunkFamily buckets the line into fixed-width chunks — the realistic
// bucket-size profile used by the gauge.
type chunkFamily struct{ width int }

func (f chunkFamily) New(r *rng.Source) lsh.Func[int] {
	off := r.Intn(f.width)
	w := f.width
	return func(p int) uint64 { return uint64((p + off) / w) }
}

func (chunkFamily) CollisionProb(float64) float64 { return 0.9 }

func lineDataset(n int) []int {
	pts := make([]int, n)
	for i := range pts {
		pts[i] = i
	}
	return pts
}

func constParams(p lsh.Params) func(int) lsh.Params {
	return func(int) lsh.Params { return p }
}

// rangePart sends indexes below Cut to shard 0 and the rest to shard 1 —
// a deliberately unbalanced partition, so the ball mass differs sharply
// across shards and the weighted choice + rejection correction is load-
// bearing for the uniformity tests.
type rangePart struct{ cut int }

func (rangePart) Name() string { return "range" }

func (p rangePart) Assign(i, _, shards int) int {
	if i < p.cut {
		return 0
	}
	return 1 + (i-p.cut)%(shards-1)
}

func buildLine(t *testing.T, n int, radius float64, shards int, part Partitioner, seed uint64) *Sharded[int] {
	t.Helper()
	s, err := Build[int](intSpace(), allCollide{}, constParams(lsh.Params{K: 1, L: 1}), lineDataset(n), radius, core.IndependentOptions{}, shards, part, seed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func domainInts(m int) []int32 {
	out := make([]int32, m)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

// TestShardedUniformChiSquared is the acceptance gate: at S ∈ {2, 4, 8}
// the sharded output stream must be uniform over the union ball — the
// seeded chi-squared test must not reject, and the TV distance must sit
// near the sampling noise floor. Both balanced (round-robin) and
// unbalanced (range) partitions run: the unbalanced one fails without the
// weighted shard choice + rejection correction.
func TestShardedUniformChiSquared(t *testing.T) {
	const ballSize = 16
	const n = 256
	const reps = 12000
	parts := map[string]func(s int) Partitioner{
		"round-robin": func(int) Partitioner { return RoundRobin{} },
		"hash":        func(int) Partitioner { return Hash{Seed: 99} },
		"range":       func(int) Partitioner { return rangePart{cut: 200} },
	}
	for name, mk := range parts {
		for _, S := range []int{2, 4, 8} {
			t.Run(fmt.Sprintf("%s/S=%d", name, S), func(t *testing.T) {
				s, err := Build[int](intSpace(), allCollide{}, constParams(lsh.Params{K: 1, L: 1}), lineDataset(n), ballSize-1, core.IndependentOptions{}, S, mk(S), 400+uint64(S))
				if err != nil {
					t.Skipf("partition %s at S=%d: %v", name, S, err)
				}
				freq := stats.NewFrequency()
				for i := 0; i < reps; i++ {
					id, ok := s.Sample(0, nil)
					if !ok {
						t.Fatal("query failed with perfect recall")
					}
					if id < 0 || id >= ballSize {
						t.Fatalf("far point %d returned (ball is [0, %d))", id, ballSize)
					}
					freq.Observe(id)
				}
				domain := domainInts(ballSize)
				if tv := freq.TVFromUniform(domain); tv > 0.03 {
					t.Errorf("S=%d: TV = %v, want < 0.03", S, tv)
				}
				if _, p := freq.ChiSquareUniform(domain); p < 1e-4 {
					t.Errorf("S=%d: chi-square rejects uniformity: p = %v", S, p)
				}
			})
		}
	}
}

// TestShardedSmallShardNotStarved pins the halving floor: with an
// aggressive Σ budget and a sharply unbalanced partition, the
// small-estimate shard reaches k=1 many periods before the large one.
// It must be floored there — not dropped to k=0 — until the whole pool
// hits the all-ones floor, or every acceptance from the later periods
// would be uniform over the surviving shards only and the small shard's
// ball points would be starved (a bias the plain chi-squared test at
// balanced partitions cannot resolve).
func TestShardedSmallShardNotStarved(t *testing.T) {
	const ballSize = 8
	// Shard 0 gets points {0..3} (4 of the 8 ball points), shard 1 the
	// other 60; SigmaBudget=2 forces a halving every other round, so
	// shard 0 reaches k=1 while shard 1 still has many periods left.
	opts := core.IndependentOptions{SigmaBudget: 2}
	s, err := Build[int](intSpace(), allCollide{}, constParams(lsh.Params{K: 1, L: 1}), lineDataset(64), ballSize-1, opts, 2, rangePart{cut: 4}, 977)
	if err != nil {
		t.Fatal(err)
	}
	freq := stats.NewFrequency()
	misses := 0
	const reps = 20000
	for i := 0; i < reps; i++ {
		id, ok := s.Sample(0, nil)
		if !ok {
			misses++ // the tiny Σ budget makes failed draws legitimate
			continue
		}
		freq.Observe(id)
	}
	if freq.Total() < reps/4 {
		t.Fatalf("only %d/%d draws succeeded — workload broken", freq.Total(), reps)
	}
	domain := domainInts(ballSize)
	if _, p := freq.ChiSquareUniform(domain); p < 1e-4 {
		small, large := 0, 0
		for id := int32(0); id < ballSize; id++ {
			if id < 4 {
				small += freq.Count(id)
			} else {
				large += freq.Count(id)
			}
		}
		t.Errorf("chi-square rejects uniformity (p = %v): small shard drew %d vs large shard %d of %d — the halving floor is broken", p, small, large, freq.Total())
	}
}

// TestShardedConsecutiveIndependence extends Definition 2's pair check to
// the sharded stream: consecutive outputs must follow the product law.
func TestShardedConsecutiveIndependence(t *testing.T) {
	const ballSize = 5
	s := buildLine(t, 40, ballSize-1, 4, RoundRobin{}, 431)
	joint := stats.NewFrequency()
	prev := int32(-1)
	const reps = 20000
	for i := 0; i < reps; i++ {
		id, ok := s.Sample(0, nil)
		if !ok {
			t.Fatal("query failed")
		}
		if prev >= 0 {
			joint.Observe(prev*ballSize + id)
		}
		prev = id
	}
	pairDomain := domainInts(ballSize * ballSize)
	if tv := joint.TVFromUniform(pairDomain); tv > 0.05 {
		t.Errorf("pair TV = %v, want < 0.05", tv)
	}
	if _, p := joint.ChiSquareUniform(pairDomain); p < 1e-4 {
		t.Errorf("chi-square rejects pair uniformity: p = %v", p)
	}
}

// TestShardedMatchesUnshardedDistribution pins the single-shard
// bit-compatibility contract: with the same seed, S=1 must replay the
// unsharded Independent's exact sample streams — Sample, SampleK and
// Samples all coincide call for call, because the build, the per-query
// stream seeds and the round arithmetic are all identical.
func TestShardedMatchesUnshardedDistribution(t *testing.T) {
	const n, radius, seed = 128, 20.0, 733
	params := lsh.Params{K: 1, L: 5}
	un, err := core.NewIndependent[int](intSpace(), modFamily{}, params, lineDataset(n), radius, core.IndependentOptions{}, seed)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := Build[int](intSpace(), modFamily{}, constParams(params), lineDataset(n), radius, core.IndependentOptions{}, 1, RoundRobin{}, seed)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		q := i % 96
		wantID, wantOK := un.Sample(q, nil)
		gotID, gotOK := sh.Sample(q, nil)
		if wantID != gotID || wantOK != gotOK {
			t.Fatalf("Sample(%d) #%d: sharded (%d, %v), unsharded (%d, %v)", q, i, gotID, gotOK, wantID, wantOK)
		}
	}
	for i := 0; i < 30; i++ {
		want := un.SampleK(5, 25, nil)
		got := sh.SampleK(5, 25, nil)
		if !slices.Equal(got, want) {
			t.Fatalf("SampleK #%d: sharded %v, unsharded %v", i, got, want)
		}
	}
	var want, got []int32
	for id, err := range un.Samples(context.Background(), 7) {
		if err != nil {
			t.Fatal(err)
		}
		if want = append(want, id); len(want) == 20 {
			break
		}
	}
	for id, err := range sh.Samples(context.Background(), 7) {
		if err != nil {
			t.Fatal(err)
		}
		if got = append(got, id); len(got) == 20 {
			break
		}
	}
	if !slices.Equal(got, want) {
		t.Fatalf("Samples stream: sharded %v, unsharded %v", got, want)
	}
}

// TestShardedIDTranslation checks the shard→global id contract: every
// returned id is a global index whose point lies inside the ball, under
// both partitioners.
func TestShardedIDTranslation(t *testing.T) {
	const ballSize = 12
	for _, part := range []Partitioner{RoundRobin{}, Hash{Seed: 5}} {
		s := buildLine(t, 96, ballSize-1, 4, part, 809)
		for i := 0; i < 300; i++ {
			id, ok := s.Sample(0, nil)
			if !ok {
				t.Fatal("query failed")
			}
			if got := s.Point(id); got != int(id) {
				t.Fatalf("%s: Point(%d) = %d, want the global index itself", part.Name(), id, got)
			}
			if int(id) > ballSize-1 {
				t.Fatalf("%s: far global id %d", part.Name(), id)
			}
		}
	}
}

// TestShardedStats checks the per-shard observability contract:
// ShardRounds sums to Rounds, ShardEstimates carries every ŝ_j with
// SketchEstimate their union sum, and ShardChosen names a live shard.
func TestShardedStats(t *testing.T) {
	s := buildLine(t, 256, 15, 4, RoundRobin{}, 877)
	var st core.QueryStats
	id, ok := s.Sample(0, &st)
	if !ok {
		t.Fatal("query failed")
	}
	if len(st.ShardRounds) != 4 || len(st.ShardEstimates) != 4 {
		t.Fatalf("shard stat lengths = (%d, %d), want (4, 4)", len(st.ShardRounds), len(st.ShardEstimates))
	}
	roundSum := 0
	for _, r := range st.ShardRounds {
		roundSum += r
	}
	if roundSum != st.Rounds {
		t.Errorf("ShardRounds sum = %d, Rounds = %d", roundSum, st.Rounds)
	}
	estSum := 0.0
	for j, e := range st.ShardEstimates {
		if e <= 0 {
			t.Errorf("shard %d estimate = %v, want > 0 (allCollide recalls everything)", j, e)
		}
		estSum += e
	}
	if st.SketchEstimate != estSum {
		t.Errorf("SketchEstimate = %v, want the shard sum %v", st.SketchEstimate, estSum)
	}
	if st.ShardChosen < 0 || st.ShardChosen >= 4 {
		t.Errorf("ShardChosen = %d, want in [0, 4)", st.ShardChosen)
	}
	if want := int(id) % 4; st.ShardChosen != want {
		t.Errorf("ShardChosen = %d, but round-robin places id %d in shard %d", st.ShardChosen, id, want)
	}
	if !st.Found {
		t.Error("Found = false after a successful draw")
	}

	// Stats capacity is reused across queries: a second query on the same
	// struct must re-zero, not accumulate garbage.
	rounds := st.Rounds
	if _, ok := s.Sample(0, &st); !ok {
		t.Fatal("second query failed")
	}
	sum := 0
	for _, r := range st.ShardRounds {
		sum += r
	}
	if sum != st.Rounds-rounds {
		t.Errorf("second query ShardRounds sum = %d, want %d", sum, st.Rounds-rounds)
	}
}

// TestShardedNoNearPoint pins the empty-ball contract: ok=false from
// Sample, ErrNoSample from SampleContext, and a one-error stream.
func TestShardedNoNearPoint(t *testing.T) {
	s := buildLine(t, 64, 3, 4, RoundRobin{}, 911)
	if _, ok := s.Sample(100000, nil); ok {
		t.Fatal("Sample found a point with an empty ball")
	}
	if _, err := s.SampleContext(context.Background(), 100000, nil); !errors.Is(err, core.ErrNoSample) {
		t.Fatalf("SampleContext err = %v, want ErrNoSample", err)
	}
	n := 0
	for _, err := range s.Samples(context.Background(), 100000) {
		if !errors.Is(err, core.ErrNoSample) {
			t.Fatalf("stream err = %v, want ErrNoSample", err)
		}
		n++
	}
	if n != 1 {
		t.Fatalf("stream yielded %d times, want exactly 1 error", n)
	}
	if got := s.SampleK(100000, 5, nil); len(got) != 0 {
		t.Fatalf("SampleK returned %v with an empty ball", got)
	}
}

// TestShardedContextCancel checks cancellation: a canceled context
// surfaces its error from SampleContext and ends a Samples stream.
func TestShardedContextCancel(t *testing.T) {
	s := buildLine(t, 64, 9, 2, RoundRobin{}, 919)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.SampleContext(ctx, 0, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("SampleContext err = %v, want Canceled", err)
	}
	for _, err := range s.Samples(ctx, 0) {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("stream err = %v, want Canceled", err)
		}
	}
}

// TestBuildValidation pins the constructor's error contract.
func TestBuildValidation(t *testing.T) {
	pts := lineDataset(16)
	mk := func(shards int, part Partitioner, pts []int) error {
		_, err := Build[int](intSpace(), allCollide{}, constParams(lsh.Params{K: 1, L: 1}), pts, 5, core.IndependentOptions{}, shards, part, 1)
		return err
	}
	if err := mk(0, RoundRobin{}, pts); err == nil {
		t.Error("shards=0 accepted")
	}
	if err := mk(4, RoundRobin{}, nil); err == nil {
		t.Error("empty point set accepted")
	}
	if err := mk(17, RoundRobin{}, pts); err == nil {
		t.Error("more shards than points accepted")
	}
	if err := mk(4, nil, pts); err != nil {
		t.Errorf("nil partitioner must default to round-robin, got %v", err)
	}
	// A two-shard range partition that leaves shard 1 empty must be
	// rejected, not silently built.
	if err := mk(2, rangePart{cut: 16}, pts); err == nil {
		t.Error("empty shard accepted")
	}
}

// TestShardedIntrospection covers Size/Shards/ShardSizes/PartitionerName
// and the scratch gauge.
func TestShardedIntrospection(t *testing.T) {
	s := buildLine(t, 100, 9, 4, RoundRobin{}, 929)
	if s.Size() != 100 {
		t.Errorf("Size = %d, want 100", s.Size())
	}
	if s.Shards() != 4 {
		t.Errorf("Shards = %d, want 4", s.Shards())
	}
	sizes := s.ShardSizes()
	total := 0
	for _, sz := range sizes {
		total += sz
	}
	if total != 100 {
		t.Errorf("ShardSizes sum = %d, want 100", total)
	}
	if s.PartitionerName() != "round-robin" {
		t.Errorf("PartitionerName = %q", s.PartitionerName())
	}
	if s.Lambda() <= 0 {
		t.Errorf("Lambda = %d, want > 0", s.Lambda())
	}
	s.Sample(0, nil)
	if s.RetainedScratchBytes() <= 0 {
		t.Error("RetainedScratchBytes = 0 after a query")
	}
}

// TestShardedConcurrentStress is the -race gate: interleaved Sample,
// SampleKInto and Samples across goroutines on one shared sharded
// structure, with every output checked against the ball. GOMAXPROCS is
// raised so the parallel resolve fan-out actually runs multi-worker.
func TestShardedConcurrentStress(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const ballSize = 10
	s, err := Build[int](intSpace(), modFamily{}, constParams(lsh.Params{K: 1, L: 4}), lineDataset(128), ballSize-1, core.IndependentOptions{}, 4, RoundRobin{}, 941)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dst := make([]int32, 0, 16)
			var st core.QueryStats
			for i := 0; i < 100; i++ {
				if id, ok := s.Sample(0, &st); ok && int(id) > ballSize-1 {
					t.Errorf("far point %d returned", id)
					return
				}
				dst = s.SampleKInto(0, 8, dst, &st)
				for _, id := range dst {
					if int(id) > ballSize-1 {
						t.Errorf("far point %d in bulk draw", id)
						return
					}
				}
				n := 0
				for id, err := range s.Samples(context.Background(), g%64) {
					if err != nil {
						break
					}
					if int(id) > g%64+ballSize-1 || int(id) < g%64-(ballSize-1) {
						t.Errorf("far point %d streamed for query %d", id, g%64)
						return
					}
					if n++; n >= 4 {
						break
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestShardedZeroAllocs extends the library's headline perf contract to
// the sharded path: after warm-up, steady-state Sample across a 4-shard
// structure allocates nothing — sessions, plans and per-shard queriers
// are all pooled.
func TestShardedZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are not meaningful under -race")
	}
	s := buildLine(t, 64, 7, 4, RoundRobin{}, 953)
	for i := 0; i < 50; i++ {
		s.Sample(0, nil)
	}
	if n := testing.AllocsPerRun(200, func() { s.Sample(0, nil) }); n != 0 {
		t.Errorf("Sharded.Sample allocs/op = %v, want 0", n)
	}
	dst := make([]int32, 0, 32)
	for i := 0; i < 20; i++ {
		dst = s.SampleKInto(0, 16, dst, nil)
	}
	if n := testing.AllocsPerRun(100, func() { dst = s.SampleKInto(0, 16, dst, nil) }); n != 0 {
		t.Errorf("Sharded.SampleKInto allocs/op = %v, want 0", n)
	}
}

// TestHashPartitionerSpread sanity-checks the hash partitioner's balance:
// over a large index range, shard loads must be near-even.
func TestHashPartitionerSpread(t *testing.T) {
	const n, shards = 100000, 8
	counts := make([]int, shards)
	h := Hash{Seed: 17}
	for i := 0; i < n; i++ {
		counts[h.Assign(i, n, shards)]++
	}
	want := float64(n) / shards
	for j, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("shard %d load %d, want ~%.0f", j, c, want)
		}
	}
}
