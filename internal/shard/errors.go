package shard

import (
	"errors"
	"fmt"
)

// ErrDegraded marks every error that means "the sharded index could not
// answer at full strength": a shard exhausted its deadline/retry budget
// (degradation disabled → the query fails fast with a *ShardError), or
// degraded mode lost every shard and had no surviving population to
// draw from (the bare sentinel is returned). Callers test with
// errors.Is(err, ErrDegraded) regardless of which form they got.
//
// A *successful* degraded query — degraded mode on, some shards lost,
// answer drawn exactly uniformly over the survivors' union ball — is not
// an error at all: it is reported on QueryStats.Degraded (see
// core.DegradedInfo), so the honest accounting travels with the stats
// rather than forcing every caller to special-case a sentinel.
var ErrDegraded = errors.New("shard: degraded — shard(s) unavailable")

// ErrShardDown is the cause inside a *ShardError when the health
// registry skipped the shard without calling it: the shard previously
// exhausted its retry budget, is marked unhealthy, and this query was
// not one of its periodic re-admission probes. It exists so fail-fast
// rejections are distinguishable from fresh failures in logs and tests.
var ErrShardDown = errors.New("shard: marked unhealthy, awaiting probe")

// ShardError is a typed per-shard failure: which shard, which backend
// operation ("arm", "segment", "pick"), and the final underlying cause
// after the deadline/retry budget was spent (a backend error, a
// recovered *core.PanicError, a context deadline, or ErrShardDown).
// It matches errors.Is(err, ErrDegraded) — any shard failure that
// surfaces to the caller means the index could not answer at full
// strength — and Unwrap exposes the cause to errors.Is/As chains.
type ShardError struct {
	// Shard is the failing shard's index.
	Shard int
	// Op is the backend operation that failed: "arm", "segment", "pick".
	Op string
	// Err is the last error of the final attempt.
	Err error
}

// Error implements error.
func (e *ShardError) Error() string {
	return fmt.Sprintf("shard %d: %s failed: %v", e.Shard, e.Op, e.Err)
}

// Unwrap exposes the underlying cause.
func (e *ShardError) Unwrap() error { return e.Err }

// Is makes every ShardError match ErrDegraded (see the sentinel's doc).
func (e *ShardError) Is(target error) bool { return target == ErrDegraded }
