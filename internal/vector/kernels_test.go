package vector

// Tests and microbenchmarks for the unrolled distance kernels introduced
// with the memoized query path: SquaredEuclidean must agree with
// Euclidean² to FP tolerance at every dimension (including the unroll
// remainders 1–3), and the benchmarks feed the BENCH_PR2 snapshot.

import (
	"fmt"
	"math"
	"testing"

	"fairnn/internal/rng"
)

// naiveDot/naiveSq are the straightforward single-accumulator references.
func naiveDot(a, b Vec) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func naiveSq(a, b Vec) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func TestUnrolledKernelsMatchNaive(t *testing.T) {
	r := rng.New(77)
	// Cover every remainder class of the 4-way unroll, plus larger dims.
	for _, d := range []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 15, 16, 17, 64, 100, 257} {
		a, b := Gaussian(r, d), Gaussian(r, d)
		if got, want := Dot(a, b), naiveDot(a, b); math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Errorf("dim %d: Dot = %v, naive = %v", d, got, want)
		}
		if got, want := SquaredEuclidean(a, b), naiveSq(a, b); math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Errorf("dim %d: SquaredEuclidean = %v, naive = %v", d, got, want)
		}
		if got, want := Euclidean(a, b), math.Sqrt(naiveSq(a, b)); math.Abs(got-want) > 1e-9*(1+want) {
			t.Errorf("dim %d: Euclidean = %v, want %v", d, got, want)
		}
	}
}

func TestSquaredEuclideanProperties(t *testing.T) {
	r := rng.New(79)
	a, b := Gaussian(r, 33), Gaussian(r, 33)
	if sq := SquaredEuclidean(a, a); sq != 0 {
		t.Errorf("SquaredEuclidean(a, a) = %v, want 0", sq)
	}
	if sq := SquaredEuclidean(a, b); sq < 0 {
		t.Errorf("SquaredEuclidean negative: %v", sq)
	}
	if d, sq := Euclidean(a, b), SquaredEuclidean(a, b); math.Abs(d*d-sq) > 1e-9*(1+sq) {
		t.Errorf("Euclidean² = %v, SquaredEuclidean = %v", d*d, sq)
	}
}

func TestSquaredEuclideanPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dimension mismatch")
		}
	}()
	SquaredEuclidean(Vec{1, 2}, Vec{1})
}

// ---------------------------------------------------------------------------
// Kernel microbenchmarks: a dimension sweep with one sub-benchmark per
// kernel tier, so one run yields the scalar-vs-accelerated comparison.
// SetBytes counts both operand vectors (16 bytes per dimension), so the
// ns/op column doubles as a GB/s gauge. Reported in BENCH_PR7.json.

const benchDim = 128

func benchVecs() (Vec, Vec) {
	r := rng.New(81)
	return Gaussian(r, benchDim), Gaussian(r, benchDim)
}

var sinkFloat float64

var benchDims = []int{16, 64, 128, 384, 768}

func benchKernelTiers(b *testing.B, kernel func(Vec, Vec) float64) {
	for _, d := range benchDims {
		r := rng.New(81)
		x, y := Gaussian(r, d), Gaussian(r, d)
		run := func(name string, accel bool) {
			b.Run(fmt.Sprintf("d=%d/%s", d, name), func(b *testing.B) {
				if accel && !AccelAvailable() {
					b.Skip("accelerated kernels unavailable in this build")
				}
				prev := Accelerated()
				SetAccelerated(accel)
				defer SetAccelerated(prev)
				b.SetBytes(int64(16 * d))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sinkFloat = kernel(x, y)
				}
			})
		}
		run("scalar", false)
		run("accel", true)
	}
}

func BenchmarkDot(b *testing.B) { benchKernelTiers(b, Dot) }

func BenchmarkSquaredEuclidean(b *testing.B) { benchKernelTiers(b, SquaredEuclidean) }

func BenchmarkEuclideanSqrt(b *testing.B) {
	x, y := benchVecs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkFloat = Euclidean(x, y)
	}
}
