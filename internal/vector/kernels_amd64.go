//go:build amd64 && !purego && !noasm

package vector

import "os"

// asmSupported marks builds that carry the AVX2/FMA kernels; the
// portable build (other architectures, or -tags purego/noasm) compiles
// the stubs in kernels_noasm.go instead and folds every accelerated
// branch away at compile time.
const asmSupported = true

// dotAVX2 returns <a[:n], b[:n]> for n a positive multiple of 16, using
// four FMA-accumulating YMM lanes with a fixed reduction order.
//
//go:noescape
func dotAVX2(a, b *float64, n int) float64

// sqDistAVX2 returns the squared Euclidean distance over the first n
// components (n a positive multiple of 16), same lane layout as dotAVX2.
//
//go:noescape
func sqDistAVX2(a, b *float64, n int) float64

func cpuid(op, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

// cpuHasAVX2FMA reports whether the CPU and OS support the kernels:
// AVX2 + FMA instruction sets, plus OS-managed YMM state (OSXSAVE and
// XCR0 bits 1|2).
func cpuHasAVX2FMA() bool {
	maxOp, _, _, _ := cpuid(0, 0)
	if maxOp < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	const fma = 1 << 12
	if ecx1&osxsave == 0 || ecx1&avx == 0 || ecx1&fma == 0 {
		return false
	}
	xcr0, _ := xgetbv0()
	if xcr0&6 != 6 { // XMM and YMM state enabled by the OS
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

func init() {
	cpuAccelOK = cpuHasAVX2FMA()
	if cpuAccelOK && os.Getenv("FAIRNN_NOASM") == "" {
		accelOn.Store(true)
	}
}
