package vector

// Kernel-path equivalence tests for the accelerated (AVX2+FMA) tier and
// the batch API:
//
//   - the accelerated Dot/SquaredEuclidean must match the naive reference
//     to FP tolerance at every remainder class of the 16-wide unroll
//     (the reduction order differs, so exact equality is not expected);
//   - every batch entry point must be bit-identical to its single-pair
//     call on whichever tier is active — that equality is what lets the
//     query pipeline batch candidate scoring without perturbing any
//     sample stream.
//
// On builds or CPUs without the assembly kernels the accelerated cases
// skip; the bit-identity cases always run on the portable tier.

import (
	"math"
	"testing"

	"fairnn/internal/rng"
)

// restoreAccel flips the kernel tier for one test and restores the
// previous setting on cleanup.
func restoreAccel(t *testing.T, on bool) {
	t.Helper()
	prev := Accelerated()
	SetAccelerated(on)
	t.Cleanup(func() { SetAccelerated(prev) })
}

// remainderDims covers every remainder class of the 16-wide accelerated
// unroll at least once (0..33 spans each class below, at and above one
// full block), the class boundaries near 48, 64 and 128, and the large
// embedding sizes of the benchmark sweep.
var remainderDims = []int{
	0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
	16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31,
	32, 33, 47, 48, 49, 63, 64, 65, 127, 128, 129, 384, 768,
}

func TestAcceleratedKernelsMatchNaive(t *testing.T) {
	if !AccelAvailable() {
		t.Skip("accelerated kernels unavailable in this build")
	}
	restoreAccel(t, true)
	r := rng.New(83)
	for _, d := range remainderDims {
		a, b := Gaussian(r, d), Gaussian(r, d)
		// Dot terms can cancel, so the achievable accuracy scales with the
		// sum of term magnitudes, not the result.
		var scale float64
		for i := range a {
			scale += math.Abs(a[i] * b[i])
		}
		if got, want := Dot(a, b), naiveDot(a, b); math.Abs(got-want) > 1e-12*(1+scale) {
			t.Errorf("dim %d: accelerated Dot = %v, naive = %v", d, got, want)
		}
		if got, want := SquaredEuclidean(a, b), naiveSq(a, b); math.Abs(got-want) > 1e-12*(1+want) {
			t.Errorf("dim %d: accelerated SquaredEuclidean = %v, naive = %v", d, got, want)
		}
	}
}

// TestBatchMatchesSingleBitIdentical pins the invariant every batched
// consumer relies on: batch output == single-call output, exactly, on
// whichever tier is active.
func TestBatchMatchesSingleBitIdentical(t *testing.T) {
	tiers := []bool{false}
	if AccelAvailable() {
		tiers = append(tiers, true)
	}
	for _, accel := range tiers {
		restoreAccel(t, accel)
		r := rng.New(89)
		for _, d := range []int{3, 8, 15, 16, 17, 31, 32, 100, 128, 384} {
			q := Gaussian(r, d)
			pts := make([]Vec, 23)
			rows := make([]float64, len(pts)*d)
			for k := range pts {
				pts[k] = Gaussian(r, d)
				copy(rows[k*d:(k+1)*d], pts[k])
			}
			ids := []int32{5, 0, 22, 7, 7, 13}
			out := make([]float64, len(pts))

			DotBatch(q, pts, out)
			for k, p := range pts {
				if out[k] != Dot(q, p) {
					t.Fatalf("accel=%v d=%d: DotBatch[%d] = %v, Dot = %v", accel, d, k, out[k], Dot(q, p))
				}
			}
			SquaredEuclideanBatch(q, pts, out)
			for k, p := range pts {
				if out[k] != SquaredEuclidean(q, p) {
					t.Fatalf("accel=%v d=%d: SquaredEuclideanBatch[%d] = %v, single = %v", accel, d, k, out[k], SquaredEuclidean(q, p))
				}
			}
			DotBatchIDs(q, pts, ids, out[:len(ids)])
			for k, id := range ids {
				if out[k] != Dot(q, pts[id]) {
					t.Fatalf("accel=%v d=%d: DotBatchIDs[%d] = %v, Dot = %v", accel, d, k, out[k], Dot(q, pts[id]))
				}
			}
			SquaredEuclideanBatchIDs(q, pts, ids, out[:len(ids)])
			for k, id := range ids {
				if out[k] != SquaredEuclidean(q, pts[id]) {
					t.Fatalf("accel=%v d=%d: SquaredEuclideanBatchIDs[%d] = %v, single = %v", accel, d, k, out[k], SquaredEuclidean(q, pts[id]))
				}
			}
			DotRows(rows, d, q, 2, 19, out[:17])
			for k := 0; k < 17; k++ {
				if out[k] != Dot(pts[2+k], q) {
					t.Fatalf("accel=%v d=%d: DotRows[%d] = %v, Dot = %v", accel, d, k, out[k], Dot(pts[2+k], q))
				}
			}
		}
	}
}

func TestSetAcceleratedToggles(t *testing.T) {
	prev := Accelerated()
	t.Cleanup(func() { SetAccelerated(prev) })
	if SetAccelerated(false) || Accelerated() {
		t.Fatal("SetAccelerated(false) left kernels accelerated")
	}
	if got := SetAccelerated(true); got != AccelAvailable() {
		t.Fatalf("SetAccelerated(true) = %v, AccelAvailable = %v", got, AccelAvailable())
	}
}
