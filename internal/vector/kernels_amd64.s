// AVX2/FMA distance kernels. Both functions require n to be a positive
// multiple of 16 (the Go wrappers in kernels.go split off the scalar
// remainder); they keep four independent YMM accumulators so the FMA
// dependency chains pipeline, and reduce them in a fixed order so results
// are deterministic run to run (FP rounding differs from the scalar
// 4-way-unrolled kernels, which is why the accelerated path is pinned by
// the equivalence and chi-squared tests rather than bit-identity).

//go:build amd64 && !purego && !noasm

#include "textflag.h"

// func dotAVX2(a, b *float64, n int) float64
TEXT ·dotAVX2(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	XORQ AX, AX

dotloop:
	VMOVUPD (SI)(AX*8), Y4
	VMOVUPD 32(SI)(AX*8), Y5
	VMOVUPD 64(SI)(AX*8), Y6
	VMOVUPD 96(SI)(AX*8), Y7
	VFMADD231PD (DI)(AX*8), Y4, Y0
	VFMADD231PD 32(DI)(AX*8), Y5, Y1
	VFMADD231PD 64(DI)(AX*8), Y6, Y2
	VFMADD231PD 96(DI)(AX*8), Y7, Y3
	ADDQ $16, AX
	CMPQ AX, CX
	JLT  dotloop

	// Fixed-order reduction: ((acc0+acc1)+(acc2+acc3)), then lanes
	// (lo128+hi128), then horizontal add of the remaining pair.
	VADDPD       Y1, Y0, Y0
	VADDPD       Y3, Y2, Y2
	VADDPD       Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD       X1, X0, X0
	VHADDPD      X0, X0, X0
	VZEROUPPER
	MOVSD X0, ret+24(FP)
	RET

// func sqDistAVX2(a, b *float64, n int) float64
TEXT ·sqDistAVX2(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	XORQ AX, AX

sqloop:
	VMOVUPD (SI)(AX*8), Y4
	VMOVUPD 32(SI)(AX*8), Y5
	VMOVUPD 64(SI)(AX*8), Y6
	VMOVUPD 96(SI)(AX*8), Y7
	VSUBPD  (DI)(AX*8), Y4, Y4
	VSUBPD  32(DI)(AX*8), Y5, Y5
	VSUBPD  64(DI)(AX*8), Y6, Y6
	VSUBPD  96(DI)(AX*8), Y7, Y7
	VFMADD231PD Y4, Y4, Y0
	VFMADD231PD Y5, Y5, Y1
	VFMADD231PD Y6, Y6, Y2
	VFMADD231PD Y7, Y7, Y3
	ADDQ $16, AX
	CMPQ AX, CX
	JLT  sqloop

	VADDPD       Y1, Y0, Y0
	VADDPD       Y3, Y2, Y2
	VADDPD       Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD       X1, X0, X0
	VHADDPD      X0, X0, X0
	VZEROUPPER
	MOVSD X0, ret+24(FP)
	RET
