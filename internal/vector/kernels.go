package vector

// Kernel tiers and the batched scoring API.
//
// The exported Dot / SquaredEuclidean entry points dispatch between two
// tiers:
//
//   - accelerated: AVX2+FMA assembly (kernels_amd64.s) processing 16
//     float64 per iteration across four independent FMA chains, with the
//     sub-16 remainder summed sequentially in Go. Active on amd64 when
//     the CPU supports AVX2+FMA with OS-managed YMM state, unless
//     disabled (see below). Its FP reduction order differs from the
//     scalar tier, so accelerated results can differ from portable ones
//     in the last bits; within one process every consumer shares one
//     kernel, so batched and per-candidate scoring — and batched and
//     per-function signing — stay bit-identical to each other.
//   - portable: the 4-way-unrolled pure-Go loops in vector.go, the only
//     tier on non-amd64 architectures and under -tags purego (or noasm).
//
// Forcing the portable path: build with -tags purego, set FAIRNN_NOASM
// to any non-empty value before process start, or call
// SetAccelerated(false) at runtime (the test hook).
//
// The *Batch* variants score one query against many points per call,
// hoisting the dispatch, the dimension checks and the query-vector setup
// out of the candidate loop; each pair is computed by exactly the same
// kernel as the corresponding single-pair call, so batch output is
// bit-identical to single-call output on both tiers.

import "sync/atomic"

// asmBlock is the element count one accelerated loop iteration consumes;
// vectors shorter than this always take the portable kernels.
const asmBlock = 16

// cpuAccelOK records whether the running CPU supports the assembly
// kernels (set by the amd64 init; stays false on portable builds).
var cpuAccelOK bool

// accelOn gates the accelerated tier at runtime. Atomic so tests can
// flip it under -race; a plain load on the query path costs nothing on
// amd64.
var accelOn atomic.Bool

// Accelerated reports whether the AVX2 kernels are currently active.
func Accelerated() bool { return asmSupported && accelOn.Load() }

// AccelAvailable reports whether this build and CPU support the
// accelerated kernels at all (regardless of the runtime switch).
func AccelAvailable() bool { return asmSupported && cpuAccelOK }

// SetAccelerated enables or disables the accelerated kernels at runtime
// and reports whether they are now active. Enabling is a no-op on builds
// or CPUs without support. Intended for tests (kernel-path equivalence,
// scalar-vs-accelerated benchmarks) and for operators that need
// cross-platform bit-reproducibility more than speed.
func SetAccelerated(on bool) bool {
	accelOn.Store(on && asmSupported && cpuAccelOK)
	return Accelerated()
}

// dotAccel is the accelerated Dot for len(a) >= asmBlock: assembly over
// the 16-aligned prefix, sequential Go over the remainder.
func dotAccel(a, b Vec) float64 {
	n := len(a) &^ (asmBlock - 1)
	s := dotAVX2(&a[0], &b[0], n)
	for i := n; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// sqDistAccel is the accelerated SquaredEuclidean for len(a) >= asmBlock.
func sqDistAccel(a, b Vec) float64 {
	n := len(a) &^ (asmBlock - 1)
	s := sqDistAVX2(&a[0], &b[0], n)
	for i := n; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// DotBatch computes out[k] = Dot(q, pts[k]) for every k, bit-identical to
// the single-pair calls on either kernel tier.
//
//fairnn:noalloc
func DotBatch(q Vec, pts []Vec, out []float64) {
	if asmSupported && accelOn.Load() && len(q) >= asmBlock {
		for k, p := range pts {
			if len(p) != len(q) {
				panic("vector: dimension mismatch")
			}
			out[k] = dotAccel(q, p)
		}
		return
	}
	for k, p := range pts {
		if len(p) != len(q) {
			panic("vector: dimension mismatch")
		}
		out[k] = dotGeneric(q, p)
	}
}

// DotBatchIDs computes out[k] = Dot(q, pts[ids[k]]) for every k — the
// gather form used by id-indexed candidate scoring.
//
//fairnn:noalloc
func DotBatchIDs(q Vec, pts []Vec, ids []int32, out []float64) {
	if asmSupported && accelOn.Load() && len(q) >= asmBlock {
		for k, id := range ids {
			p := pts[id]
			if len(p) != len(q) {
				panic("vector: dimension mismatch")
			}
			out[k] = dotAccel(q, p)
		}
		return
	}
	for k, id := range ids {
		p := pts[id]
		if len(p) != len(q) {
			panic("vector: dimension mismatch")
		}
		out[k] = dotGeneric(q, p)
	}
}

// SquaredEuclideanBatch computes out[k] = SquaredEuclidean(q, pts[k]) for
// every k, bit-identical to the single-pair calls on either kernel tier.
func SquaredEuclideanBatch(q Vec, pts []Vec, out []float64) {
	if asmSupported && accelOn.Load() && len(q) >= asmBlock {
		for k, p := range pts {
			if len(p) != len(q) {
				panic("vector: dimension mismatch")
			}
			out[k] = sqDistAccel(q, p)
		}
		return
	}
	for k, p := range pts {
		if len(p) != len(q) {
			panic("vector: dimension mismatch")
		}
		out[k] = squaredEuclideanGeneric(q, p)
	}
}

// SquaredEuclideanBatchIDs computes out[k] = SquaredEuclidean(q,
// pts[ids[k]]) for every k — the gather form behind core.Space's
// ScoreSqBatch seam.
func SquaredEuclideanBatchIDs(q Vec, pts []Vec, ids []int32, out []float64) {
	if asmSupported && accelOn.Load() && len(q) >= asmBlock {
		for k, id := range ids {
			p := pts[id]
			if len(p) != len(q) {
				panic("vector: dimension mismatch")
			}
			out[k] = sqDistAccel(q, p)
		}
		return
	}
	for k, id := range ids {
		p := pts[id]
		if len(p) != len(q) {
			panic("vector: dimension mismatch")
		}
		out[k] = squaredEuclideanGeneric(q, p)
	}
}

// DotRows computes out[i-lo] = Dot(rows[i*dim:(i+1)*dim], v) for i in
// [lo, hi) over a flat row-major matrix — the signing inner products of
// the SimHash/E2LSH batch families. Per-row results are bit-identical to
// vector.Dot on either tier, so batched and per-function signatures stay
// bit-equal.
func DotRows(rows []float64, dim int, v Vec, lo, hi int, out []float64) {
	if dim != len(v) {
		panic("vector: dimension mismatch")
	}
	if asmSupported && accelOn.Load() && dim >= asmBlock {
		n := dim &^ (asmBlock - 1)
		for i := lo; i < hi; i++ {
			row := rows[i*dim : (i+1)*dim]
			s := dotAVX2(&row[0], &v[0], n)
			for j := n; j < dim; j++ {
				s += row[j] * v[j]
			}
			out[i-lo] = s
		}
		return
	}
	for i := lo; i < hi; i++ {
		out[i-lo] = dotGeneric(rows[i*dim:(i+1)*dim], v)
	}
}
