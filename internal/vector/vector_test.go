package vector

import (
	"math"
	"testing"
	"testing/quick"

	"fairnn/internal/rng"
)

func TestDotKnown(t *testing.T) {
	a := Vec{1, 2, 3}
	b := Vec{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot(Vec{1}, Vec{1, 2})
}

func TestNormAndNormalize(t *testing.T) {
	v := Vec{3, 4}
	if got := Norm(v); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	Normalize(v)
	if got := Norm(v); math.Abs(got-1) > 1e-12 {
		t.Errorf("norm after Normalize = %v", got)
	}
}

func TestNormalizeZeroVector(t *testing.T) {
	v := Vec{0, 0, 0}
	Normalize(v)
	for _, x := range v {
		if x != 0 {
			t.Fatal("zero vector changed by Normalize")
		}
	}
}

func TestEuclideanTriangle(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		if anyNaN(ax, ay, bx, by, cx, cy) {
			return true
		}
		a, b, c := Vec{ax, ay}, Vec{bx, by}, Vec{cx, cy}
		return Euclidean(a, c) <= Euclidean(a, b)+Euclidean(b, c)+1e-9
	}
	cfg := &quick.Config{MaxCount: 300, Values: nil}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func anyNaN(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
			return true
		}
	}
	return false
}

func TestUnitNormRelation(t *testing.T) {
	// For unit vectors, |p-q|² = 2 - 2<p,q> (used throughout Section 5).
	r := rng.New(1)
	for i := 0; i < 100; i++ {
		p := RandomUnit(r, 16)
		q := RandomUnit(r, 16)
		lhs := Euclidean(p, q) * Euclidean(p, q)
		rhs := 2 - 2*Dot(p, q)
		if math.Abs(lhs-rhs) > 1e-9 {
			t.Fatalf("identity violated: %v vs %v", lhs, rhs)
		}
	}
}

func TestRandomUnitIsUnit(t *testing.T) {
	r := rng.New(2)
	for i := 0; i < 200; i++ {
		if n := Norm(RandomUnit(r, 8)); math.Abs(n-1) > 1e-9 {
			t.Fatalf("norm = %v", n)
		}
	}
}

func TestUnitWithInnerProduct(t *testing.T) {
	r := rng.New(3)
	q := RandomUnit(r, 24)
	for _, alpha := range []float64{-0.9, -0.5, 0, 0.3, 0.7, 0.9, 0.99} {
		p := UnitWithInnerProduct(r, q, alpha)
		if n := Norm(p); math.Abs(n-1) > 1e-9 {
			t.Errorf("alpha %v: norm %v", alpha, n)
		}
		if ip := Dot(p, q); math.Abs(ip-alpha) > 1e-9 {
			t.Errorf("alpha %v: inner product %v", alpha, ip)
		}
	}
}

func TestCosine(t *testing.T) {
	a := Vec{1, 0}
	b := Vec{0, 2}
	if got := Cosine(a, b); math.Abs(got) > 1e-12 {
		t.Errorf("Cosine orthogonal = %v", got)
	}
	if got := Cosine(a, Vec{3, 0}); math.Abs(got-1) > 1e-12 {
		t.Errorf("Cosine parallel = %v", got)
	}
	if got := Cosine(a, Vec{0, 0}); got != 0 {
		t.Errorf("Cosine with zero vector = %v", got)
	}
}

func TestAddScaleClone(t *testing.T) {
	a := Vec{1, 2}
	b := Vec{3, 5}
	sum := Add(a, b)
	if sum[0] != 4 || sum[1] != 7 {
		t.Errorf("Add = %v", sum)
	}
	sc := Scale(a, 2)
	if sc[0] != 2 || sc[1] != 4 {
		t.Errorf("Scale = %v", sc)
	}
	c := Clone(a)
	c[0] = 100
	if a[0] == 100 {
		t.Error("Clone shares storage")
	}
}

func TestGaussianMoments(t *testing.T) {
	r := rng.New(5)
	const d = 64
	const n = 2000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := Gaussian(r, d)
		for _, x := range v {
			sum += x
			sumsq += x * x
		}
	}
	total := float64(n * d)
	mean := sum / total
	variance := sumsq/total - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("variance %v", variance)
	}
}
