// Package vector provides the dense float64 vector operations used by the
// inner-product data structures of Section 5 (locality-sensitive filters)
// and by the SimHash / E2LSH families: dot products, norms, normalization,
// and samplers for random unit vectors and Gaussian directions.
package vector

import (
	"math"

	"fairnn/internal/rng"
)

// Vec is a dense vector of float64 components.
type Vec []float64

// Dot returns the inner product <a, b>. It panics if the dimensions
// differ. It dispatches to the AVX2+FMA kernel when one is active (see
// kernels.go) and otherwise to the portable 4-way-unrolled loop; every
// Dot caller (Section 5 filters, SimHash/E2LSH signing) shares the same
// resolved kernel within one process, which keeps batched and
// per-function hashing bit-equal.
//
//fairnn:noalloc
func Dot(a, b Vec) float64 {
	if len(a) != len(b) {
		panic("vector: dimension mismatch")
	}
	if asmSupported && accelOn.Load() && len(a) >= asmBlock {
		return dotAccel(a, b)
	}
	return dotGeneric(a, b)
}

// dotGeneric is the portable kernel: four independent accumulators so
// the additions pipeline instead of serializing on one FP dependency
// chain. Assumes len(a) == len(b).
//
//fairnn:noalloc
func dotGeneric(a, b Vec) float64 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+3 < len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func Norm(v Vec) float64 { return math.Sqrt(Dot(v, v)) }

// SquaredEuclidean returns the squared Euclidean distance between a and b —
// the sqrt-free kernel behind the Euclidean space's near test, which
// compares against r² instead of taking a square root per candidate.
// Dispatches like Dot.
func SquaredEuclidean(a, b Vec) float64 {
	if len(a) != len(b) {
		panic("vector: dimension mismatch")
	}
	if asmSupported && accelOn.Load() && len(a) >= asmBlock {
		return sqDistAccel(a, b)
	}
	return squaredEuclideanGeneric(a, b)
}

// squaredEuclideanGeneric is the portable kernel, unrolled like
// dotGeneric. Assumes len(a) == len(b).
func squaredEuclideanGeneric(a, b Vec) float64 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+3 < len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Euclidean returns the Euclidean distance between a and b.
func Euclidean(a, b Vec) float64 {
	return math.Sqrt(SquaredEuclidean(a, b))
}

// Cosine returns <a,b> / (|a||b|), i.e. the cosine of the angle between a
// and b. It returns 0 when either vector has zero norm.
func Cosine(a, b Vec) float64 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Normalize scales v in place to unit norm and returns it.
// Zero vectors are returned unchanged.
func Normalize(v Vec) Vec {
	n := Norm(v)
	if n == 0 {
		return v
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
	return v
}

// Clone returns an independent copy of v.
func Clone(v Vec) Vec {
	c := make(Vec, len(v))
	copy(c, v)
	return c
}

// Add returns a + b as a new vector.
func Add(a, b Vec) Vec {
	if len(a) != len(b) {
		panic("vector: dimension mismatch")
	}
	out := make(Vec, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Scale returns c * v as a new vector.
func Scale(v Vec, c float64) Vec {
	out := make(Vec, len(v))
	for i := range v {
		out[i] = c * v[i]
	}
	return out
}

// Gaussian samples a d-dimensional vector with i.i.d. N(0,1) components —
// the random directions a_{i,j} of Section 5.
func Gaussian(r *rng.Source, d int) Vec {
	v := make(Vec, d)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

// RandomUnit samples a vector uniformly from the unit sphere S^{d-1}.
func RandomUnit(r *rng.Source, d int) Vec {
	for {
		v := Gaussian(r, d)
		if Norm(v) > 1e-9 {
			return Normalize(v)
		}
	}
}

// UnitWithInnerProduct returns a unit vector whose inner product with the
// unit vector q is exactly alpha (|alpha| <= 1): it mixes q with a random
// unit direction orthogonal to q. Used to plant near neighbors at a known
// similarity for the Section 5 experiments.
func UnitWithInnerProduct(r *rng.Source, q Vec, alpha float64) Vec {
	if alpha > 1 {
		alpha = 1
	}
	if alpha < -1 {
		alpha = -1
	}
	// Draw a random direction and orthogonalize against q.
	var orth Vec
	for {
		u := RandomUnit(r, len(q))
		proj := Dot(u, q)
		orth = make(Vec, len(q))
		for i := range u {
			orth[i] = u[i] - proj*q[i]
		}
		if Norm(orth) > 1e-9 {
			Normalize(orth)
			break
		}
	}
	beta := math.Sqrt(1 - alpha*alpha)
	out := make(Vec, len(q))
	for i := range q {
		out[i] = alpha*q[i] + beta*orth[i]
	}
	return out
}
