//go:build !amd64 || purego || noasm

package vector

// Portable build: no assembly kernels. asmSupported folds the
// accelerated branches away; the stubs exist only to satisfy the
// compiler and are unreachable (Accelerated() can never be true here).
const asmSupported = false

func dotAVX2(a, b *float64, n int) float64    { panic("vector: no assembly kernels in this build") }
func sqDistAVX2(a, b *float64, n int) float64 { panic("vector: no assembly kernels in this build") }
