package fairnn_test

import (
	"fmt"

	"fairnn"
)

// Sampling a near neighbor fairly: every user within the similarity
// threshold is equally likely to be returned, and repeated queries are
// independent.
func ExampleNewSetIndependent() {
	users := []fairnn.Set{
		fairnn.SetFromSlice([]uint32{1, 2, 3, 4, 5}),
		fairnn.SetFromSlice([]uint32{1, 2, 3, 4, 6}),
		fairnn.SetFromSlice([]uint32{90, 91, 92, 93, 94}),
	}
	sampler, err := fairnn.NewSetIndependent(users, 0.5, fairnn.IndependentOptions{}, fairnn.Config{Seed: 42})
	if err != nil {
		panic(err)
	}
	id, ok := sampler.Sample(users[0], nil)
	fmt.Println(ok, fairnn.Jaccard(users[0], sampler.Point(id)) >= 0.5)
	// Output: true true
}

// Drawing k distinct near neighbors without replacement (Section 3.1).
func ExampleNewSetSampler() {
	users := []fairnn.Set{
		fairnn.SetFromSlice([]uint32{1, 2, 3, 4, 5}),
		fairnn.SetFromSlice([]uint32{1, 2, 3, 4, 6}),
		fairnn.SetFromSlice([]uint32{1, 2, 3, 5, 6}),
		fairnn.SetFromSlice([]uint32{70, 71, 72, 73, 74}),
	}
	sampler, err := fairnn.NewSetSampler(users, 0.5, fairnn.Config{Seed: 7})
	if err != nil {
		panic(err)
	}
	ids := sampler.SampleK(users[0], 3, nil)
	distinct := map[int32]bool{}
	allNear := true
	for _, id := range ids {
		distinct[id] = true
		allNear = allNear && fairnn.Jaccard(users[0], sampler.Point(id)) >= 0.5
	}
	fmt.Println(len(ids), len(distinct), allNear)
	// Output: 3 3 true
}

// Weighted sampling (the paper's future-work direction): prefer closer
// points with a caller-chosen weight while keeping everything in the ball
// reachable.
func ExampleNewSetWeighted() {
	users := []fairnn.Set{
		fairnn.SetFromSlice([]uint32{1, 2, 3, 4, 5}),
		fairnn.SetFromSlice([]uint32{1, 2, 3, 4, 6}),
	}
	weight := func(sim float64) float64 { return sim * sim }
	w, err := fairnn.NewSetWeighted(users, 0.5, weight, 1, fairnn.IndependentOptions{}, fairnn.Config{Seed: 3})
	if err != nil {
		panic(err)
	}
	id, ok := w.Sample(users[0], nil)
	fmt.Println(ok, fairnn.Jaccard(users[0], w.Point(id)) >= 0.5)
	// Output: true true
}

// Tracking per-query cost through QueryStats (the Q3 accounting).
func ExampleQueryStats() {
	users := []fairnn.Set{
		fairnn.SetFromSlice([]uint32{1, 2, 3, 4, 5}),
		fairnn.SetFromSlice([]uint32{1, 2, 3, 4, 6}),
		fairnn.SetFromSlice([]uint32{50, 51, 52, 53, 54}),
	}
	std, err := fairnn.NewSetStandard(users, 0.5, fairnn.Config{Seed: 9})
	if err != nil {
		panic(err)
	}
	var st fairnn.QueryStats
	_, _ = std.NaiveFairSample(users[0], &st)
	fmt.Println(st.Found, st.PointsInspected > 0, st.ScoreEvals > 0)
	// Output: true true true
}
