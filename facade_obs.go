package fairnn

import (
	"net/http"

	"fairnn/internal/obs"
)

// This file is the observability surface of the façade: a telemetry
// Registry attached to samplers with the Observe option (and, for
// sharded builds, the WithTraceSampling span tree). The contract
// mirrors the fault injector's: telemetry that is absent or idle is
// contractually invisible — a sampler built without Observe, or with a
// registry nobody reads, emits bit-identical same-seed sample streams
// and allocates nothing extra on the Sample hot path. See the
// "Observability" section of the package documentation for the mapping
// from instruments to the invariants they watch.

// Registry is a collection of telemetry instruments — counters, gauges,
// and log-spaced latency histograms — shared by every layer observing
// into it. Registration is get-or-create keyed on (name, labels) and
// may allocate; the instruments themselves are lock-free and zero-alloc
// to record into, so a registry may be attached to a sampler on the
// hottest query path. Expose it in Prometheus text format with
// Registry.WritePrometheus or MetricsHandler, or read instruments
// programmatically (Counter/Gauge/Histogram are get-or-create, so
// fetching an instrument by the same name and labels returns the live
// one).
type Registry = obs.Registry

// NewRegistry returns an empty telemetry registry, ready to pass to
// Observe.
func NewRegistry() *Registry { return obs.NewRegistry() }

// TraceRing is the sampled per-query tracer enabled by
// WithTraceSampling; Registry.Tracer returns it (nil when tracing is
// off). TraceRing.Recent returns the retained span trees.
type TraceRing = obs.Tracer

// QueryTrace is one sampled query's span tree: the per-shard arm fan-out,
// segment reports, and point picks, annotated with retries, notes, and
// failures.
type QueryTrace = obs.Trace

// TraceSpan is one operation inside a QueryTrace.
type TraceSpan = obs.Span

// MetricLabels renders a label set ("shard", "3", "op", "arm") into the
// canonical sorted form instruments are keyed on — use it to fetch a
// specific labeled instrument back out of a Registry.
func MetricLabels(kv ...string) string { return obs.Labels(kv...) }

// MetricsHandler serves r in Prometheus text exposition format — mount
// it on an operator mux as /metrics. (fairnn-server does this behind
// its -obs flag.)
func MetricsHandler(r *Registry) http.Handler { return obs.MetricsHandler(r) }
