package fairnn

import (
	"fairnn/internal/core"
	"fairnn/internal/lsh"
	"fairnn/internal/set"
	"fairnn/internal/shard"
	"fairnn/internal/vector"
)

// This file is the sharding surface of the façade: the Sharded sampler
// (internal/shard) partitions the point set across S shards, builds one
// Section 4 structure per shard in parallel, and answers queries with the
// uniformity-preserving two-stage draw — shard chosen with probability
// proportional to its per-query near-count estimate, estimate error
// corrected by the same rejection step the paper uses to sample uniformly
// from a union of buckets. Construct through NewSet/NewVec with
// WithShards (optionally WithPartitioner), or the explicit constructors
// below.

// Sharded is a fair sampler over a point set partitioned across S shards.
// It satisfies the full Sampler contract: every Sample is exactly uniform
// over the union ball B_S(q, r) and consecutive draws are independent
// (Theorem 2 lifted to the partitioned index), with returned ids in the
// global index space of the original point slice. With one shard the
// sampler is bit-identical — same-seed streams and all — to the unsharded
// SetIndependent/VecSamplerIndependent it wraps. Query methods are safe
// for concurrent use and steady-state Sample allocates nothing;
// QueryStats gains per-shard counters (ShardRounds, ShardEstimates,
// ShardChosen) on sharded queries.
//
// Sharded wraps read-only samplers only: the per-shard structures are
// immutable after construction (Algorithm(Dynamic) combined with
// WithShards returns ErrShardedDynamic instead of misbehaving).
type Sharded[P any] = shard.Sharded[P]

// Partitioner assigns each global point index to a shard (see
// RoundRobinPartitioner and HashPartitioner for the built-in schemes).
// Assign must be deterministic and return a value in [0, shards).
type Partitioner = shard.Partitioner

// RoundRobinPartitioner stripes points across shards in index order —
// shard sizes differ by at most one. The default.
func RoundRobinPartitioner() Partitioner { return shard.RoundRobin{} }

// HashPartitioner assigns each point by a seeded hash of its index, so
// shard loads stay balanced in expectation regardless of input order
// (round-robin can stripe adversarially ordered input into correlated
// shards). The seed keys the hash; 0 is a valid fixed key.
func HashPartitioner(seed uint64) Partitioner { return shard.Hash{Seed: seed} }

// NewSetSharded partitions the sets across shards and indexes each shard
// for independent uniform r-near neighbor sampling (the sharded form of
// NewSetIndependent; part == nil defaults to round-robin). LSH parameters
// are chosen per shard from its point count; λ and the Σ budget are
// resolved once globally so the acceptance test is identical across
// shards — the uniformity of the union draw depends on it. shards == 1
// reproduces NewSetIndependent bit for bit.
func NewSetSharded(sets []Set, radius float64, shards int, part Partitioner, opts IndependentOptions, cfg Config) (*Sharded[Set], error) {
	cfg = cfg.withDefaults()
	opts.Memo = memoOr(opts.Memo, cfg.Memo)
	paramsFor := func(n int) lsh.Params { return cfg.paramsAt(n, radius) }
	return shard.Build[set.Set](core.Jaccard(), cfg.family(), paramsFor, sets, radius, opts, shards, part, cfg.Seed)
}

// NewVecSharded partitions unit vectors across shards for independent
// uniform sampling from {p : ⟨p, q⟩ ≥ alpha} (the sharded form of
// NewVecSamplerIndependent; part == nil defaults to round-robin).
// shards == 1 reproduces NewVecSamplerIndependent bit for bit.
func NewVecSharded(points []Vec, alpha float64, shards int, part Partitioner, opts IndependentOptions, cfg VecConfig) (*Sharded[Vec], error) {
	if cfg.Dim == 0 && len(points) > 0 {
		cfg.Dim = len(points[0])
	}
	cfg = cfg.withDefaults()
	opts.Memo = memoOr(opts.Memo, cfg.Memo)
	paramsFor := func(n int) lsh.Params { return cfg.paramsAt(n, alpha) }
	return shard.Build[vector.Vec](core.InnerProduct(), cfg.family(), paramsFor, points, alpha, opts, shards, part, cfg.Seed)
}
