package fairnn

import (
	"fairnn/internal/core"
	"fairnn/internal/fault"
	"fairnn/internal/lsh"
	"fairnn/internal/set"
	"fairnn/internal/shard"
	"fairnn/internal/vector"
)

// This file is the sharding surface of the façade: the Sharded sampler
// (internal/shard) partitions the point set across S shards, builds one
// Section 4 structure per shard in parallel, and answers queries with the
// uniformity-preserving two-stage draw — shard chosen with probability
// proportional to its per-query near-count estimate, estimate error
// corrected by the same rejection step the paper uses to sample uniformly
// from a union of buckets. Construct through NewSet/NewVec with
// WithShards (optionally WithPartitioner), or the explicit constructors
// below.

// Sharded is a fair sampler over a point set partitioned across S shards.
// It satisfies the full Sampler contract: every Sample is exactly uniform
// over the union ball B_S(q, r) and consecutive draws are independent
// (Theorem 2 lifted to the partitioned index), with returned ids in the
// global index space of the original point slice. With one shard the
// sampler is bit-identical — same-seed streams and all — to the unsharded
// SetIndependent/VecSamplerIndependent it wraps. Query methods are safe
// for concurrent use and steady-state Sample allocates nothing;
// QueryStats gains per-shard counters (ShardRounds, ShardEstimates,
// ShardChosen) on sharded queries.
//
// Sharded wraps read-only samplers only: the per-shard structures are
// immutable after construction (Algorithm(Dynamic) combined with
// WithShards returns ErrShardedDynamic instead of misbehaving).
type Sharded[P any] = shard.Sharded[P]

// Partitioner assigns each global point index to a shard (see
// RoundRobinPartitioner and HashPartitioner for the built-in schemes).
// Assign must be deterministic and return a value in [0, shards).
type Partitioner = shard.Partitioner

// RoundRobinPartitioner stripes points across shards in index order —
// shard sizes differ by at most one. The default.
func RoundRobinPartitioner() Partitioner { return shard.RoundRobin{} }

// HashPartitioner assigns each point by a seeded hash of its index, so
// shard loads stay balanced in expectation regardless of input order
// (round-robin can stripe adversarially ordered input into correlated
// shards). The seed keys the hash; 0 is a valid fixed key.
func HashPartitioner(seed uint64) Partitioner { return shard.Hash{Seed: seed} }

// ErrDegraded marks every error meaning "the sharded index could not
// answer at full strength" — a *ShardError when a shard exhausted its
// deadline/retry budget with degradation off, or the bare sentinel when
// degraded mode lost every shard. Match with errors.Is(err, ErrDegraded).
// A successful degraded answer is not an error: it is reported on
// QueryStats.Degraded (see DegradedInfo).
var ErrDegraded = shard.ErrDegraded

// ErrShardDown is the cause inside a *ShardError when the health
// registry skipped an unhealthy shard without calling it (fail-fast
// between re-admission probes).
var ErrShardDown = shard.ErrShardDown

// ShardError is a typed per-shard failure: the shard, the backend
// operation ("arm", "segment", "pick"), and the final cause after the
// deadline/retry budget was spent. It matches errors.Is(err, ErrDegraded).
type ShardError = shard.ShardError

// DegradedInfo reports a degraded sharded query on QueryStats.Degraded:
// which shards were lost, how many indexed points they held, and the
// estimated fraction of the union ball the surviving shards cover. The
// answer itself remains exactly uniform — over the survivors' union
// ball.
type DegradedInfo = core.DegradedInfo

// ShardHealth is a point-in-time snapshot of one shard's health record;
// see Sharded.Health.
type ShardHealth = shard.ShardHealth

// ShardResilience is the per-shard-call fault-tolerance policy of a
// sharded sampler, normally assembled via the WithShardDeadline /
// WithShardRetry / WithShardBackoff / WithDegradedMode /
// WithShardProbeEvery options. The zero value disables the resilient
// path entirely.
type ShardResilience = shard.Resilience

// FaultInjector is the deterministic fault-injection harness wired
// through the sharded backend seam by WithFaultInjection: seeded
// per-shard latency, error, stall, and panic injection whose every
// decision is a pure function of (seed, shard, operation, call ordinal).
// Tests only; an idle injector is contractually invisible.
type FaultInjector = fault.Injector

// FaultSpec declares one fault schedule of a FaultInjector (shard/op
// filters, call-ordinal window, per-call rates, added latency).
type FaultSpec = fault.Spec

// FaultOp names a per-shard backend operation a FaultSpec can intercept.
type FaultOp = fault.Op

// The interceptable backend operations.
const (
	FaultOpArm     = fault.OpArm
	FaultOpSegment = fault.OpSegment
	FaultOpPick    = fault.OpPick
)

// ErrInjected is the transient error injected by FaultSpec.ErrRate.
var ErrInjected = fault.ErrInjected

// NewFaultInjector builds a fault injector for a sampler with the given
// shard count; identical (seed, specs, call sequence) produce identical
// faults. FaultAlways as a rate makes a spec fire on every matching
// call.
func NewFaultInjector(shards int, seed uint64, specs ...FaultSpec) *FaultInjector {
	return fault.New(shards, seed, specs...)
}

// FaultAlways is a rate that fires on every matching call.
const FaultAlways = fault.Always

// NewSetSharded partitions the sets across shards and indexes each shard
// for independent uniform r-near neighbor sampling (the sharded form of
// NewSetIndependent; part == nil defaults to round-robin). LSH parameters
// are chosen per shard from its point count; λ and the Σ budget are
// resolved once globally so the acceptance test is identical across
// shards — the uniformity of the union draw depends on it. shards == 1
// reproduces NewSetIndependent bit for bit.
func NewSetSharded(sets []Set, radius float64, shards int, part Partitioner, opts IndependentOptions, cfg Config) (*Sharded[Set], error) {
	return newSetShardedConfig(sets, radius, opts, cfg, shard.Config{Shards: shards, Partitioner: part})
}

// newSetShardedConfig is the full-knob sharded set constructor the
// builder delegates to (resilience policy, fault injector).
func newSetShardedConfig(sets []Set, radius float64, opts IndependentOptions, cfg Config, scfg shard.Config) (*Sharded[Set], error) {
	cfg = cfg.withDefaults()
	opts.Memo = memoOr(opts.Memo, cfg.Memo)
	scfg.Seed = cfg.Seed
	paramsFor := func(n int) lsh.Params { return cfg.paramsAt(n, radius) }
	return shard.BuildConfig[set.Set](core.Jaccard(), cfg.family(), paramsFor, sets, radius, opts, scfg)
}

// NewVecSharded partitions unit vectors across shards for independent
// uniform sampling from {p : ⟨p, q⟩ ≥ alpha} (the sharded form of
// NewVecSamplerIndependent; part == nil defaults to round-robin).
// shards == 1 reproduces NewVecSamplerIndependent bit for bit.
func NewVecSharded(points []Vec, alpha float64, shards int, part Partitioner, opts IndependentOptions, cfg VecConfig) (*Sharded[Vec], error) {
	return newVecShardedConfig(points, alpha, opts, cfg, shard.Config{Shards: shards, Partitioner: part})
}

// newVecShardedConfig is the full-knob sharded vector constructor the
// builder delegates to (resilience policy, fault injector).
func newVecShardedConfig(points []Vec, alpha float64, opts IndependentOptions, cfg VecConfig, scfg shard.Config) (*Sharded[Vec], error) {
	if cfg.Dim == 0 && len(points) > 0 {
		cfg.Dim = len(points[0])
	}
	cfg = cfg.withDefaults()
	opts.Memo = memoOr(opts.Memo, cfg.Memo)
	scfg.Seed = cfg.Seed
	paramsFor := func(n int) lsh.Params { return cfg.paramsAt(n, alpha) }
	return shard.BuildConfig[vector.Vec](core.InnerProduct(), cfg.family(), paramsFor, points, alpha, opts, scfg)
}
