package fairnn

import (
	"errors"
	"fmt"
	"time"

	"fairnn/internal/shard"
)

// This file is the functional-options construction surface: one
// constructor shape per point type (NewSet, NewVec) replacing the
// Config/VecConfig/opts triple-threading of the legacy constructors. The
// legacy constructors remain supported and the builder delegates to them,
// so a builder-made sampler produces bit-identical same-seed sample
// streams to its legacy twin.

// Typed construction errors. Option validation wraps these (use
// errors.Is), with the offending value in the message.
var (
	// ErrNoPoints means the point slice was empty (index at least one
	// point, or use NewSetDynamic to start empty).
	ErrNoPoints = errors.New("fairnn: empty point set")
	// ErrBadRadius means the radius (or alpha/beta threshold, or radius
	// grid) was missing or outside its valid range.
	ErrBadRadius = errors.New("fairnn: bad or missing radius")
	// ErrDimMismatch means the vectors (or WithDim) disagree on
	// dimensionality.
	ErrDimMismatch = errors.New("fairnn: vector dimensionality mismatch")
	// ErrBadOption means an option combination is invalid for the chosen
	// algorithm or point type.
	ErrBadOption = errors.New("fairnn: invalid option combination")
	// ErrShardedDynamic means WithShards was combined with
	// Algorithm(Dynamic). Sharded wraps read-only samplers only: the
	// weighted shard choice rests on per-shard structures that are
	// immutable after construction, and a mutable shard would silently
	// skew the union distribution — so the combination is rejected with a
	// typed error instead. Keep a single unsharded SetDynamic for the
	// mutable working set and rebuild the sharded index offline.
	ErrShardedDynamic = errors.New("fairnn: sharding wraps read-only samplers (Algorithm(Dynamic) is mutable)")
)

// Algo selects the construction behind NewSet / NewVec.
type Algo int

const (
	// NNIS is the Section 4 independent uniform sampler (the r-NNIS
	// problem) — the default. For vectors it uses the Section 4 LSH
	// construction over SimHash; see Filter for the Section 5 structure.
	NNIS Algo = iota
	// NNS is the Section 3 uniform sampler (deterministic per build).
	NNS
	// Standard is the classic biased LSH baseline; its Sample is the
	// naive fair post-processing sampler. Sets only.
	Standard
	// Exact is the linear-scan ground truth.
	Exact
	// Weighted samples near neighbors with probability proportional to
	// WithWeight's weight of their similarity. Sets only.
	Weighted
	// MultiRadius samples from the tightest non-empty ball over the
	// WithRadii grid (no single radius needed). Sets only.
	MultiRadius
	// Dynamic is the insert/delete-capable sampler, pre-loaded with the
	// given points. Sets only.
	Dynamic
	// Filter is the Section 5 filter-based α-NNIS structure in nearly
	// linear space (requires WithBeta). Vectors only.
	Filter
)

// String names the algorithm for error messages.
func (a Algo) String() string {
	switch a {
	case NNIS:
		return "NNIS"
	case NNS:
		return "NNS"
	case Standard:
		return "Standard"
	case Exact:
		return "Exact"
	case Weighted:
		return "Weighted"
	case MultiRadius:
		return "MultiRadius"
	case Dynamic:
		return "Dynamic"
	case Filter:
		return "Filter"
	}
	return fmt.Sprintf("Algo(%d)", int(a))
}

// builder accumulates options before validation.
type builder struct {
	algo      Algo
	radius    float64
	radiusSet bool
	radii     []float64
	seed      uint64
	k, l      int
	memo      MemoOptions
	farSim    float64
	farBudget float64
	recall    float64
	fullMin   bool
	crossPoly bool
	dim       int
	beta      float64
	betaSet   bool
	weight    WeightFunc
	wMax      float64
	iopts     IndependentOptions
	ioptsSet  bool
	vopts     VecOptions
	voptsSet  bool
	shards    int
	shardsSet bool
	part      Partitioner
	resil     shard.Resilience
	resilSet  bool
	inj       *FaultInjector
	reg       *Registry
	trcN      int
	err       error
}

// fail records the first option/validation error.
func (b *builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Option configures NewSet or NewVec.
type Option func(*builder)

// Radius sets the query radius: the minimum Jaccard similarity for sets,
// or the inner-product threshold α for vectors. Required by every
// algorithm except MultiRadius (which takes WithRadii).
func Radius(r float64) Option {
	return func(b *builder) { b.radius, b.radiusSet = r, true }
}

// Algorithm selects the construction (default NNIS).
func Algorithm(a Algo) Option {
	return func(b *builder) { b.algo = a }
}

// WithSeed sets the seed driving all randomness (default 1). Same seed,
// same options, same points → bit-identical structure and sample streams.
func WithSeed(seed uint64) Option {
	return func(b *builder) { b.seed = seed }
}

// WithParams overrides automatic LSH parameter selection with explicit
// (K, L); both must be positive.
func WithParams(k, l int) Option {
	return func(b *builder) {
		if k <= 0 || l <= 0 {
			b.fail(fmt.Errorf("%w: WithParams(%d, %d) needs positive K and L", ErrBadOption, k, l))
			return
		}
		b.k, b.l = k, l
	}
}

// WithMemo sets the per-query memory discipline (memo backend threshold,
// querier retention cap, scratch budget). A Memo set inside
// WithIndependentOptions/WithVecOptions wins over this, mirroring the
// legacy opts-over-Config precedence.
func WithMemo(m MemoOptions) Option {
	return func(b *builder) { b.memo = m }
}

// WithRecall sets the target recall at the radius for automatic L
// selection (default 0.99); must be in (0, 1).
func WithRecall(recall float64) Option {
	return func(b *builder) {
		if recall <= 0 || recall >= 1 {
			b.fail(fmt.Errorf("%w: WithRecall(%v) outside (0, 1)", ErrBadOption, recall))
			return
		}
		b.recall = recall
	}
}

// WithFarSim sets the "far" similarity for automatic K selection
// (defaults: 0.1 for sets, 0 for vectors).
func WithFarSim(s float64) Option {
	return func(b *builder) { b.farSim = s }
}

// WithFarBudget sets the expected number of far collisions for automatic
// K selection (default 5).
func WithFarBudget(budget float64) Option {
	return func(b *builder) { b.farBudget = budget }
}

// WithFullMinHash uses full 64-bit MinHash bucket keys instead of the
// 1-bit scheme (sets only).
func WithFullMinHash() Option {
	return func(b *builder) { b.fullMin = true }
}

// WithCrossPolytope selects the cross-polytope family instead of SimHash
// (vectors only).
func WithCrossPolytope() Option {
	return func(b *builder) { b.crossPoly = true }
}

// WithDim fixes the vector dimensionality (otherwise inferred from the
// first point); vectors only.
func WithDim(d int) Option {
	return func(b *builder) {
		if d <= 0 {
			b.fail(fmt.Errorf("%w: WithDim(%d) needs a positive dimension", ErrBadOption, d))
			return
		}
		b.dim = d
	}
}

// WithBeta sets the far threshold β of the Section 5 Filter structure
// (required with Algorithm(Filter); must satisfy −1 < β < α).
func WithBeta(beta float64) Option {
	return func(b *builder) { b.beta, b.betaSet = beta, true }
}

// WithWeight sets the weight function of Algorithm(Weighted): near
// neighbors are returned with probability proportional to
// weight(similarity). wMax must upper-bound the weight over the near
// range.
func WithWeight(weight WeightFunc, wMax float64) Option {
	return func(b *builder) { b.weight, b.wMax = weight, wMax }
}

// WithRadii sets the similarity grid of Algorithm(MultiRadius); queries
// sample from the tightest non-empty ball.
func WithRadii(radii ...float64) Option {
	return func(b *builder) { b.radii = append([]float64(nil), radii...) }
}

// WithShards partitions the index across s shards, each backed by its own
// Section 4 structure built in parallel, queried through the
// uniformity-preserving two-stage draw (see Sharded). Requires
// Algorithm(NNIS) — the default — and at most one shard per point;
// Algorithm(Dynamic) is rejected with ErrShardedDynamic. WithShards(1)
// builds a one-shard Sharded that is bit-identical to the unsharded
// sampler.
func WithShards(s int) Option {
	return func(b *builder) {
		if s < 1 {
			b.fail(fmt.Errorf("%w: WithShards(%d) needs at least one shard", ErrBadOption, s))
			return
		}
		b.shards, b.shardsSet = s, true
	}
}

// WithPartitioner selects how points are assigned to shards (default
// round-robin); requires WithShards.
func WithPartitioner(p Partitioner) Option {
	return func(b *builder) {
		if p == nil {
			b.fail(fmt.Errorf("%w: WithPartitioner(nil)", ErrBadOption))
			return
		}
		b.part = p
	}
}

// WithShardDeadline bounds every individual attempt of every per-shard
// call (arm, segment report, point pick) of a sharded query; an attempt
// that exceeds it counts as a failure against the shard's retry budget.
// Deadlines bound waiting — injected faults today, RPC I/O in the
// networked backend — while in-process compute is bounded by the query's
// own cancellation polling. Requires WithShards.
func WithShardDeadline(d time.Duration) Option {
	return func(b *builder) {
		if d <= 0 {
			b.fail(fmt.Errorf("%w: WithShardDeadline(%v) needs a positive deadline", ErrBadOption, d))
			return
		}
		b.resil.Deadline, b.resilSet = d, true
	}
}

// WithShardRetry grants every per-shard call retries extra attempts
// after its first failure, with capped exponential backoff between
// attempts. The backoff jitter comes from a per-(query, shard) substream
// derived from the query's stream seed — never from the query's main RNG
// stream, so fault-free sample streams stay bit-identical to an
// un-retried sampler. Requires WithShards.
func WithShardRetry(retries int) Option {
	return func(b *builder) {
		if retries < 0 {
			b.fail(fmt.Errorf("%w: WithShardRetry(%d) needs a non-negative count", ErrBadOption, retries))
			return
		}
		b.resil.Retries, b.resilSet = retries, true
	}
}

// WithShardBackoff tunes the retry backoff: attempt i sleeps a jittered
// duration in (0, min(base<<i, max)] (defaults 1ms, 50ms). Requires
// WithShards and WithShardRetry.
func WithShardBackoff(base, max time.Duration) Option {
	return func(b *builder) {
		if base <= 0 || max < base {
			b.fail(fmt.Errorf("%w: WithShardBackoff(%v, %v) needs 0 < base ≤ max", ErrBadOption, base, max))
			return
		}
		b.resil.BackoffBase, b.resil.BackoffMax, b.resilSet = base, max, true
	}
}

// WithDegradedMode answers queries from the surviving shards when one or
// more shards exhaust their deadline/retry budget: the lost shards leave
// the union pool and every accepted draw remains exactly uniform — over
// the survivors' union ball, a smaller population, reported honestly on
// QueryStats.Degraded (shards lost, points lost, estimated coverage
// fraction). Without it, the first exhausted shard fails the query fast
// with a typed *ShardError (matching errors.Is(err, ErrDegraded)).
// Requires WithShards.
func WithDegradedMode() Option {
	return func(b *builder) { b.resil.Degraded, b.resilSet = true, true }
}

// WithShardProbeEvery sets the health registry's re-admission cadence:
// a shard marked unhealthy is skipped without spending the query's
// budget, except every n-th skip-eligible call probes it for real — one
// successful arm re-admits it (default 8). Requires WithShards.
func WithShardProbeEvery(n int) Option {
	return func(b *builder) {
		if n < 1 {
			b.fail(fmt.Errorf("%w: WithShardProbeEvery(%d) needs n ≥ 1", ErrBadOption, n))
			return
		}
		b.resil.ProbeEvery, b.resilSet = n, true
	}
}

// WithFaultInjection interposes the deterministic fault-injection
// harness on every per-shard backend call (see NewFaultInjector) — a
// test-only knob for exercising the resilience policy against seeded
// latency, errors, stalls, and panics. The injector must be built for
// the same shard count. An idle injector (no firing specs) leaves
// same-seed sample streams bit-identical. Requires WithShards.
func WithFaultInjection(inj *FaultInjector) Option {
	return func(b *builder) {
		if inj == nil {
			b.fail(fmt.Errorf("%w: WithFaultInjection(nil)", ErrBadOption))
			return
		}
		b.inj = inj
	}
}

// Observe attaches a telemetry registry to the sampler: the draw loop
// records rejection rounds, memo hits, batch-scored candidates, and
// draw latency into r (sharded builds additionally record per-shard
// arm/segment/pick latency, retries, backoff waits, and health
// transitions). A sampler built without Observe — or with the
// registry's instruments never read — emits bit-identical same-seed
// sample streams and allocates nothing extra on the Sample hot path:
// telemetry is contractually invisible, exactly like an idle fault
// injector. Expose r over HTTP with MetricsHandler or
// Registry.WritePrometheus, or read instruments programmatically.
// Requires an algorithm with an
// instrumented draw loop: NNIS (the default), Weighted, MultiRadius, or
// Filter.
func Observe(r *Registry) Option {
	return func(b *builder) {
		if r == nil {
			b.fail(fmt.Errorf("%w: Observe(nil) — omit the option to disable telemetry", ErrBadOption))
			return
		}
		b.reg = r
	}
}

// WithTraceSampling additionally captures a structured span tree (arm →
// per-shard segment reports → point picks, annotated with retries,
// degraded transitions, and failure notes) for one in every everyN
// queries, published to the registry's trace ring (Registry.Tracer).
// The trace-or-not decision is a pure hash of the query's stream seed —
// drawn from a derived substream, never from the query's own RNG
// stream — so traced and untraced runs emit bit-identical sample
// streams. Requires WithShards (spans follow the per-shard backend
// seam) and Observe.
func WithTraceSampling(everyN int) Option {
	return func(b *builder) {
		if everyN < 1 {
			b.fail(fmt.Errorf("%w: WithTraceSampling(%d) needs everyN ≥ 1", ErrBadOption, everyN))
			return
		}
		b.trcN = everyN
	}
}

// WithIndependentOptions tunes the Section 4 constructions (NNIS,
// Weighted, MultiRadius); the zero value follows the paper. An explicitly
// set Memo field wins over WithMemo. Any other algorithm rejects it with
// ErrBadOption.
func WithIndependentOptions(o IndependentOptions) Option {
	return func(b *builder) { b.iopts, b.ioptsSet = o, true }
}

// WithVecOptions tunes the Section 5 Filter construction; the zero value
// follows the paper. An explicitly set Memo field wins over WithMemo.
// Any other algorithm rejects it with ErrBadOption.
func WithVecOptions(o VecOptions) Option {
	return func(b *builder) { b.vopts, b.voptsSet = o, true }
}

// apply folds the options into a builder.
func apply(opts []Option) *builder {
	b := &builder{}
	for _, opt := range opts {
		opt(b)
	}
	return b
}

// lshTuned reports whether any LSH parameter-selection option was
// supplied — such tuning has no effect on constructions that build no
// LSH tables and is rejected there instead of silently dropped.
func (b *builder) lshTuned() bool {
	return b.k > 0 || b.l > 0 || b.recall != 0 || b.farSim != 0 || b.farBudget != 0
}

// setConfig assembles the legacy Config the builder delegates to.
func (b *builder) setConfig() Config {
	return Config{
		K: b.k, L: b.l,
		FullMinHash: b.fullMin,
		FarSim:      b.farSim,
		FarBudget:   b.farBudget,
		Recall:      b.recall,
		Seed:        b.seed,
		Memo:        b.memo,
	}
}

// vecConfig assembles the legacy VecConfig the builder delegates to.
func (b *builder) vecConfig() VecConfig {
	return VecConfig{
		K: b.k, L: b.l,
		Dim:           b.dim,
		FarSim:        b.farSim,
		FarBudget:     b.farBudget,
		Recall:        b.recall,
		CrossPolytope: b.crossPoly,
		Seed:          b.seed,
		Memo:          b.memo,
	}
}

// checkTelemetry rejects WithTraceSampling without its prerequisites:
// the span tree follows the per-shard backend seam, so there is nothing
// to trace without WithShards, and nowhere to publish without Observe.
func (b *builder) checkTelemetry() error {
	if b.trcN > 0 && b.reg == nil {
		return fmt.Errorf("%w: WithTraceSampling requires Observe (traces publish to the registry's trace ring)", ErrBadOption)
	}
	if b.trcN > 0 && !b.shardsSet {
		return fmt.Errorf("%w: WithTraceSampling requires WithShards (spans follow the per-shard backend seam)", ErrBadOption)
	}
	return nil
}

// needShardsForResilience rejects resilience/fault options on unsharded
// builds — the policy governs per-shard failure domains, so without
// WithShards it would silently do nothing.
func (b *builder) needShardsForResilience() error {
	if (b.resilSet || b.inj != nil) && !b.shardsSet {
		return fmt.Errorf("%w: shard resilience options (WithShardDeadline/WithShardRetry/WithShardBackoff/WithDegradedMode/WithShardProbeEvery/WithFaultInjection) require WithShards", ErrBadOption)
	}
	return nil
}

// shardConfig assembles the shard-layer build config from the builder
// (the seed is filled in by the sharded constructors from the resolved
// Config/VecConfig).
func (b *builder) shardConfig() shard.Config {
	return shard.Config{
		Shards:      b.shards,
		Partitioner: b.part,
		Resilience:  b.resil,
		Injector:    b.inj,
		Obs:         b.reg,
		TraceEveryN: b.trcN,
	}
}

// needRadius validates the single-radius requirement for set algorithms.
func (b *builder) needSetRadius() (float64, error) {
	if !b.radiusSet {
		return 0, fmt.Errorf("%w: Radius option is required", ErrBadRadius)
	}
	if b.radius <= 0 || b.radius > 1 {
		return 0, fmt.Errorf("%w: Jaccard radius %v outside (0, 1]", ErrBadRadius, b.radius)
	}
	return b.radius, nil
}

// NewSet indexes item sets (Jaccard similarity) behind the Sampler
// contract, configured by functional options:
//
//	s, err := fairnn.NewSet(points,
//	    fairnn.Radius(0.5),
//	    fairnn.Algorithm(fairnn.NNIS),
//	    fairnn.WithSeed(7),
//	)
//
// The default algorithm is NNIS (the Section 4 independent uniform
// sampler). Option validation returns typed errors (ErrBadRadius,
// ErrNoPoints, ErrBadOption) that callers match with errors.Is. The
// builder delegates to the legacy constructors, so a builder-made sampler
// is bit-identical (same seed, same options) to its legacy twin.
func NewSet(points []Set, opts ...Option) (Sampler[Set], error) {
	b := apply(opts)
	if b.err != nil {
		return nil, b.err
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("%w (use NewSetDynamic to start empty)", ErrNoPoints)
	}
	if b.crossPoly || b.dim > 0 {
		return nil, fmt.Errorf("%w: WithCrossPolytope/WithDim are vector options", ErrBadOption)
	}
	if b.betaSet {
		return nil, fmt.Errorf("%w: WithBeta belongs to the vector Filter algorithm", ErrBadOption)
	}
	if b.weight != nil && b.algo != Weighted {
		return nil, fmt.Errorf("%w: WithWeight requires Algorithm(Weighted), got %v", ErrBadOption, b.algo)
	}
	if len(b.radii) > 0 && b.algo != MultiRadius {
		return nil, fmt.Errorf("%w: WithRadii requires Algorithm(MultiRadius), got %v", ErrBadOption, b.algo)
	}
	if b.voptsSet {
		return nil, fmt.Errorf("%w: WithVecOptions belongs to the vector Filter algorithm", ErrBadOption)
	}
	if b.ioptsSet && b.algo != NNIS && b.algo != Weighted && b.algo != MultiRadius {
		return nil, fmt.Errorf("%w: WithIndependentOptions has no effect on Algorithm(%v)", ErrBadOption, b.algo)
	}
	if b.reg != nil && b.algo != NNIS && b.algo != Weighted && b.algo != MultiRadius {
		return nil, fmt.Errorf("%w: Observe instruments the Section 4 draw loop — Algorithm(%v) has none", ErrBadOption, b.algo)
	}
	cfg := b.setConfig()
	if b.part != nil && !b.shardsSet {
		return nil, fmt.Errorf("%w: WithPartitioner requires WithShards", ErrBadOption)
	}
	if err := b.needShardsForResilience(); err != nil {
		return nil, err
	}
	if err := b.checkTelemetry(); err != nil {
		return nil, err
	}
	if b.shardsSet {
		if b.algo == Dynamic {
			return nil, fmt.Errorf("%w: WithShards(%d) with Algorithm(Dynamic)", ErrShardedDynamic, b.shards)
		}
		if b.algo != NNIS {
			return nil, fmt.Errorf("%w: sharding wraps the Section 4 sampler — WithShards requires Algorithm(NNIS), got %v", ErrBadOption, b.algo)
		}
		r, err := b.needSetRadius()
		if err != nil {
			return nil, err
		}
		if b.shards > len(points) {
			return nil, fmt.Errorf("%w: WithShards(%d) over %d points leaves shards empty", ErrBadOption, b.shards, len(points))
		}
		return newSetShardedConfig(points, r, b.iopts, cfg, b.shardConfig())
	}
	// Unsharded builds thread the registry through the Section 4 options
	// (sharded builds carry it on shard.Config instead: the shard layer
	// owns the draw loop there, and registering an idle core-layer
	// instrument family would be noise in the exposition).
	b.iopts.Obs = b.reg
	switch b.algo {
	case MultiRadius:
		if b.radiusSet {
			return nil, fmt.Errorf("%w: Algorithm(MultiRadius) takes WithRadii, not Radius", ErrBadOption)
		}
		if len(b.radii) == 0 {
			return nil, fmt.Errorf("%w: Algorithm(MultiRadius) needs WithRadii", ErrBadRadius)
		}
		for _, r := range b.radii {
			if r <= 0 || r > 1 {
				return nil, fmt.Errorf("%w: grid radius %v outside (0, 1]", ErrBadRadius, r)
			}
		}
		return NewSetMultiRadius(points, b.radii, b.iopts, cfg)
	case NNIS:
		r, err := b.needSetRadius()
		if err != nil {
			return nil, err
		}
		return NewSetIndependent(points, r, b.iopts, cfg)
	case NNS:
		r, err := b.needSetRadius()
		if err != nil {
			return nil, err
		}
		return NewSetSampler(points, r, cfg)
	case Standard:
		r, err := b.needSetRadius()
		if err != nil {
			return nil, err
		}
		if b.memo != (MemoOptions{}) {
			return nil, fmt.Errorf("%w: Algorithm(Standard) keeps no pooled memo — WithMemo has no effect", ErrBadOption)
		}
		return NewSetStandard(points, r, cfg)
	case Exact:
		r, err := b.needSetRadius()
		if err != nil {
			return nil, err
		}
		if b.lshTuned() || b.fullMin || b.memo != (MemoOptions{}) {
			return nil, fmt.Errorf("%w: Algorithm(Exact) is a linear scan — LSH and memo tuning have no effect", ErrBadOption)
		}
		return NewSetExact(points, r, cfg.withDefaults().Seed), nil
	case Weighted:
		r, err := b.needSetRadius()
		if err != nil {
			return nil, err
		}
		if b.weight == nil || b.wMax <= 0 {
			return nil, fmt.Errorf("%w: Algorithm(Weighted) needs WithWeight with a positive wMax", ErrBadOption)
		}
		return NewSetWeighted(points, r, b.weight, b.wMax, b.iopts, cfg)
	case Dynamic:
		r, err := b.needSetRadius()
		if err != nil {
			return nil, err
		}
		if b.memo != (MemoOptions{}) {
			return nil, fmt.Errorf("%w: Algorithm(Dynamic) keeps no pooled memo — WithMemo has no effect", ErrBadOption)
		}
		d, err := NewSetDynamic(r, len(points), cfg)
		if err != nil {
			return nil, err
		}
		for _, p := range points {
			if _, err := d.Insert(p); err != nil {
				return nil, err
			}
		}
		return d, nil
	case Filter:
		return nil, fmt.Errorf("%w: Algorithm(Filter) is vector-only (use NewVec)", ErrBadOption)
	}
	return nil, fmt.Errorf("%w: unknown algorithm %v", ErrBadOption, b.algo)
}

// NewVec indexes unit vectors (inner-product similarity) behind the
// Sampler contract; Radius is the near threshold α. The default algorithm
// is NNIS (the Section 4 LSH construction over SimHash); Algorithm(Filter)
// selects the Section 5 nearly-linear-space structure and additionally
// needs WithBeta. Vector dimensionality is inferred from the first point
// (override with WithDim); points disagreeing with it return
// ErrDimMismatch.
func NewVec(points []Vec, opts ...Option) (Sampler[Vec], error) {
	b := apply(opts)
	if b.err != nil {
		return nil, b.err
	}
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	if b.fullMin {
		return nil, fmt.Errorf("%w: WithFullMinHash is a set option", ErrBadOption)
	}
	if b.weight != nil || len(b.radii) > 0 {
		return nil, fmt.Errorf("%w: WithWeight/WithRadii belong to the set algorithms", ErrBadOption)
	}
	if b.betaSet && b.algo != Filter {
		return nil, fmt.Errorf("%w: WithBeta requires Algorithm(Filter), got %v", ErrBadOption, b.algo)
	}
	if b.voptsSet && b.algo != Filter {
		return nil, fmt.Errorf("%w: WithVecOptions requires Algorithm(Filter), got %v", ErrBadOption, b.algo)
	}
	if b.ioptsSet && b.algo != NNIS {
		return nil, fmt.Errorf("%w: WithIndependentOptions has no effect on Algorithm(%v)", ErrBadOption, b.algo)
	}
	if b.reg != nil && b.algo != NNIS && b.algo != Filter {
		return nil, fmt.Errorf("%w: Observe instruments the Section 4/5 draw loops — Algorithm(%v) has none", ErrBadOption, b.algo)
	}
	dim := b.dim
	if dim == 0 {
		dim = len(points[0])
	}
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("%w: point %d has dim %d, want %d", ErrDimMismatch, i, len(p), dim)
		}
	}
	b.dim = dim
	if !b.radiusSet {
		return nil, fmt.Errorf("%w: Radius (alpha) option is required", ErrBadRadius)
	}
	alpha := b.radius
	if alpha <= -1 || alpha >= 1 {
		return nil, fmt.Errorf("%w: alpha %v outside (-1, 1)", ErrBadRadius, alpha)
	}
	cfg := b.vecConfig()
	if b.part != nil && !b.shardsSet {
		return nil, fmt.Errorf("%w: WithPartitioner requires WithShards", ErrBadOption)
	}
	if err := b.needShardsForResilience(); err != nil {
		return nil, err
	}
	if err := b.checkTelemetry(); err != nil {
		return nil, err
	}
	if b.shardsSet {
		if b.algo == Dynamic {
			// Dynamic is set-only anyway, but the documented contract for
			// the combination is the dedicated typed error (see NewSet).
			return nil, fmt.Errorf("%w: WithShards(%d) with Algorithm(Dynamic)", ErrShardedDynamic, b.shards)
		}
		if b.algo != NNIS {
			return nil, fmt.Errorf("%w: sharding wraps the Section 4 sampler — WithShards requires Algorithm(NNIS), got %v", ErrBadOption, b.algo)
		}
		if b.shards > len(points) {
			return nil, fmt.Errorf("%w: WithShards(%d) over %d points leaves shards empty", ErrBadOption, b.shards, len(points))
		}
		return newVecShardedConfig(points, alpha, b.iopts, cfg, b.shardConfig())
	}
	// See NewSet: unsharded builds carry the registry on the options
	// structs; sharded builds carry it on shard.Config.
	b.iopts.Obs = b.reg
	switch b.algo {
	case NNIS:
		return NewVecSamplerIndependent(points, alpha, b.iopts, cfg)
	case NNS:
		return NewVecSampler(points, alpha, cfg)
	case Filter:
		if !b.betaSet {
			return nil, fmt.Errorf("%w: Algorithm(Filter) needs WithBeta", ErrBadRadius)
		}
		if b.beta <= -1 || b.beta >= alpha {
			return nil, fmt.Errorf("%w: beta %v outside (-1, alpha=%v)", ErrBadRadius, b.beta, alpha)
		}
		if b.lshTuned() || b.crossPoly {
			return nil, fmt.Errorf("%w: Algorithm(Filter) is tuned via WithVecOptions — LSH (K, L)/recall/far and cross-polytope options have no effect", ErrBadOption)
		}
		vopts := b.vopts
		vopts.Memo = memoOr(vopts.Memo, b.memo)
		vopts.Obs = b.reg
		return NewVecIndependent(points, alpha, b.beta, vopts, cfg.withDefaults().Seed)
	case Exact:
		if b.lshTuned() || b.crossPoly || b.memo != (MemoOptions{}) {
			return nil, fmt.Errorf("%w: Algorithm(Exact) is a linear scan — LSH and memo tuning have no effect", ErrBadOption)
		}
		return NewVecExact(points, alpha, cfg.withDefaults().Seed), nil
	case Standard, Weighted, MultiRadius, Dynamic:
		return nil, fmt.Errorf("%w: Algorithm(%v) is set-only (use NewSet)", ErrBadOption, b.algo)
	}
	return nil, fmt.Errorf("%w: unknown algorithm %v", ErrBadOption, b.algo)
}
