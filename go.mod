module fairnn

go 1.24
