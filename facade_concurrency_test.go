package fairnn_test

import (
	"testing"

	"fairnn"
)

func batchFixtureSets() []fairnn.Set {
	sets := make([]fairnn.Set, 120)
	for i := range sets {
		items := make([]uint32, 0, 24)
		base := uint32((i / 10) * 40)
		for j := uint32(0); j < 24; j++ {
			items = append(items, base+j+uint32(i%10))
		}
		sets[i] = fairnn.SetFromSlice(items)
	}
	return sets
}

// TestSampleBatch checks the bulk fan-out: results align positionally with
// the queries, every returned id is a true near neighbor, and self-queries
// (distance 0) always succeed.
func TestSampleBatch(t *testing.T) {
	sets := batchFixtureSets()
	d, err := fairnn.NewSetIndependent(sets, 0.3, fairnn.IndependentOptions{}, fairnn.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 4} {
		res := fairnn.SampleBatch[fairnn.Set](d, sets, workers)
		if len(res) != len(sets) {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(res), len(sets))
		}
		for i, r := range res {
			if !r.OK {
				t.Fatalf("workers=%d: self-query %d failed", workers, i)
			}
			if sim := fairnn.Jaccard(sets[i], d.Point(r.ID)); sim < 0.3 {
				t.Fatalf("workers=%d: query %d returned far point (J=%v)", workers, i, sim)
			}
		}
	}
}

// TestSampleKBatch checks the k-sample fan-out against the Section 4
// structure.
func TestSampleKBatch(t *testing.T) {
	sets := batchFixtureSets()
	d, err := fairnn.NewSetIndependent(sets, 0.3, fairnn.IndependentOptions{}, fairnn.Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	queries := sets[:30]
	res := fairnn.SampleKBatch[fairnn.Set](d, queries, 5, 4)
	if len(res) != len(queries) {
		t.Fatalf("got %d results, want %d", len(res), len(queries))
	}
	for i, ids := range res {
		if len(ids) == 0 {
			t.Fatalf("query %d returned no samples", i)
		}
		for _, id := range ids {
			if sim := fairnn.Jaccard(queries[i], d.Point(id)); sim < 0.3 {
				t.Fatalf("query %d sampled far point (J=%v)", i, sim)
			}
		}
	}
}
